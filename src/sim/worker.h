// Simulated userspace worker process: a run-to-completion epoll event loop
// (paper Fig. 9 / Fig. A1) driven by the discrete-event queue.
//
// Loop structure per iteration, exactly mirroring the paper:
//   on_loop_enter(now)                  <- avail heartbeat (hang detection)
//   batch = epoll_wait()                <- collect ready accepts + requests
//   busy += |batch|
//   for each event: process (costs CPU time); busy -= 1 after each
//   schedule_and_sync()                 <- Hermes stage 2 (at loop END — the
//                                          placement §5.3.2 argues for)
//   if nothing ready: block with the 5 ms timeout, else loop immediately
//
// A "hang" needs no special machinery: a poison request simply has a huge
// cost, so the worker stays inside the iteration and its avail timestamp
// goes stale — which is precisely how production hangs look to Hermes.
#pragma once

#include <deque>
#include <optional>
#include <functional>
#include <vector>

#include "core/hermes.h"
#include "netsim/netstack.h"
#include "simcore/event_queue.h"
#include "simcore/histogram.h"
#include "sim/request.h"

namespace hermes::sim {

class Worker final : public netsim::Waiter {
 public:
  struct Config {
    WorkerId id = 0;
    SimTime epoll_timeout = SimTime::millis(5);
    // Cost model of the loop machinery itself.
    SimTime wakeup_cost = SimTime::micros(2);       // epoll_wait return path
    SimTime accept_cost = SimTime::micros(3);       // accept() + epoll_ctl ADD
    SimTime per_listen_socket_cost = SimTime::nanos(300);  // O(#ports) scan
    // Hermes stage-2 costs (Table 5 accounting).
    SimTime scheduler_cost_per_worker = SimTime::nanos(60);
    SimTime sync_syscall_cost = SimTime::micros(1);
    int max_batch = 64;
    // Ablation (paper §5.3.2): run the scheduler at the START of the loop
    // iteration instead of the end — observes stale status and overloads
    // apparently-idle workers.
    bool schedule_at_loop_start = false;
    // Ablation: minimum spacing between schedule_and_sync calls. Zero =
    // every loop iteration (the paper's design); large values degrade the
    // closed loop toward a static (sk_lookup-style) steering table.
    SimTime min_sync_interval = SimTime::zero();
    // UserDispatcher mode: the worker does not accept from listening
    // sockets itself; connections arrive via adopt_connection().
    bool accepts_enabled = true;
    // Relative core speed for heterogeneous-fleet scenarios: request and
    // accept costs are divided by this factor (2.0 = twice as fast). 1.0
    // keeps the cost model byte-identical to the homogeneous path.
    double speed = 1.0;
  };

  // Host callbacks (implemented by LbDevice).
  struct Host {
    // A connection was accepted by this worker.
    std::function<void(Worker&, netsim::Connection)> on_accepted;
    // A request finished processing at `now`.
    std::function<void(Worker&, const Request&)> on_request_done;
  };

  Worker(Config cfg, EventQueue& eq, netsim::NetStack& ns, Host host,
         core::HermesRuntime* hermes);

  WorkerId id() const { return cfg_.id; }

  // Must be called once after all ports are bound.
  void attach_sockets();

  // Start the event loop (enter epoll_wait).
  void start();

  // --- kernel-side notifications ---------------------------------------
  // Shared-socket modes (exclusive/rr/wakeall): wait-queue wakeup.
  bool try_wake(netsim::ListeningSocket& source) override;
  // Per-worker-socket modes (reuseport/hermes): socket became readable.
  void on_socket_ready(netsim::ListeningSocket& sock);

  // A request arrived on one of this worker's established connections.
  void deliver_request(const Request& req);

  // UserDispatcher mode: take ownership of a connection the dispatcher
  // accepted on our behalf (counts as an accept for this worker).
  void adopt_connection(netsim::Connection conn);

  // Immediate connection close bookkeeping (run from request completion).
  void note_conn_closed();

  // --- state ------------------------------------------------------------
  bool blocked() const { return state_ == State::Blocked; }
  int64_t live_connections() const { return live_conns_; }
  SimTime busy_time() const { return busy_time_; }
  uint64_t requests_done() const { return requests_done_; }
  uint64_t accepts_done() const { return accepts_done_; }
  uint64_t loop_iterations() const { return loop_iterations_; }
  uint64_t wasted_wakeups() const { return wasted_wakeups_; }

  // Per-worker distributions for Figs. 4 and 5.
  Histogram& events_per_wait() { return events_per_wait_; }
  Histogram& event_processing_time() { return event_proc_time_; }
  Histogram& blocking_time() { return blocking_time_; }

 private:
  enum class State : uint8_t { Blocked, Woken, Running };

  void block();
  void on_timeout();
  void start_iteration();
  void process_next();
  void finish_event(WorkerEvent ev);
  void end_iteration();
  size_t collect_batch();

  Config cfg_;
  EventQueue& eq_;
  netsim::NetStack& ns_;
  Host host_;
  core::HermesRuntime* hermes_;          // null in non-Hermes modes
  std::optional<core::EventLoopHooks> hooks_;

  std::vector<netsim::ListeningSocket*> sockets_;
  std::deque<Request> pending_requests_;  // conn events not yet in a batch
  std::deque<WorkerEvent> batch_;

  State state_ = State::Running;  // until start()
  EventQueue::Handle timeout_handle_{};
  SimTime blocked_since_{};
  SimTime last_sync_ = SimTime::nanos(-1);

  int64_t live_conns_ = 0;
  SimTime busy_time_{};
  uint64_t requests_done_ = 0;
  uint64_t accepts_done_ = 0;
  uint64_t loop_iterations_ = 0;
  uint64_t wasted_wakeups_ = 0;

  Histogram events_per_wait_{3};
  Histogram event_proc_time_{4};
  Histogram blocking_time_{4};
};

}  // namespace hermes::sim
