#include "sim/workload.h"

#include "util/check.h"

namespace hermes::sim {

double DistSpec::sample(Rng& rng) const {
  switch (kind) {
    case Kind::Const: return a;
    case Kind::Uniform: return rng.uniform(a, b);
    case Kind::Exp: return rng.exponential(a);
    case Kind::Lognormal: return rng.lognormal(std::log(a), b);
    case Kind::ParetoBounded: return rng.bounded_pareto(a, b, c);
  }
  return a;
}

// The four cases, scaled so a `workers`-core LB runs at roughly 25-30% total
// CPU at load=1 and approaches/exceeds saturation at load=3, mirroring the
// paper's light/medium/heavy replay.
TrafficPattern case_pattern(int case_id, uint32_t workers, double load) {
  HERMES_CHECK(case_id >= 1 && case_id <= 4);
  const double w = static_cast<double>(workers);
  TrafficPattern p;
  switch (case_id) {
    case 1:
      // High CPS, low processing time: stress tests / traffic spikes.
      p.name = "case1-hiCPS-loPT";
      p.cps = 2000.0 * w * load;
      p.requests_per_conn = DistSpec::constant(1);
      p.request_cost_us = DistSpec::lognormal(140, 0.35);
      p.request_bytes = DistSpec::lognormal(400, 0.6);
      break;
    case 2:
      // High CPS, high processing time: spikes of compression-heavy work.
      p.name = "case2-hiCPS-hiPT";
      p.cps = 32.0 * w * load;
      p.requests_per_conn = DistSpec::uniform(3, 6);
      p.request_cost_us = DistSpec::lognormal(1100, 0.8);
      p.request_bytes = DistSpec::lognormal(8000, 0.8);
      p.request_gap_us = DistSpec::exponential(40'000);
      // Compression-like wedges: rare requests that pin a core for 100s of
      // ms — the "busy or hung state" §6.2 attributes to this case.
      p.poison_fraction = 0.003;
      p.poison_cost_us = DistSpec::uniform(100'000, 500'000);
      break;
    case 3:
      // Low CPS, low processing time, long-lived connections: finance/chat.
      p.name = "case3-loCPS-loPT";
      p.cps = 28.0 * w * load;
      p.requests_per_conn = DistSpec::uniform(60, 140);
      p.request_cost_us = DistSpec::lognormal(110, 0.4);
      p.request_bytes = DistSpec::lognormal(500, 0.7);
      p.request_gap_us = DistSpec::exponential(100'000);
      break;
    case 4:
      // Low CPS, high processing time: TLS handshakes + regex routing.
      p.name = "case4-loCPS-hiPT";
      p.cps = 14.0 * w * load;
      p.requests_per_conn = DistSpec::uniform(3, 7);
      p.request_cost_us = DistSpec::lognormal(2400, 1.1);
      p.request_bytes = DistSpec::lognormal(3000, 0.8);
      p.request_gap_us = DistSpec::exponential(30'000);
      // SSL/regex outliers that wedge a core (paper: 30ms -> 440s hangs).
      p.poison_fraction = 0.002;
      p.poison_cost_us = DistSpec::uniform(150'000, 800'000);
      break;
  }
  return p;
}

std::vector<RegionMix> paper_region_mixes() {
  // Table 4 of the paper.
  return {
      {"Region1", {0.1945, 0.0055, 0.6561, 0.1439}},
      {"Region2", {0.0077, 0.0783, 0.0927, 0.8213}},
      {"Region3", {0.0660, 0.0290, 0.6080, 0.2970}},
      {"Region4", {0.0281, 0.0741, 0.8907, 0.0071}},
  };
}

std::vector<RegionTraffic> paper_region_traffic() {
  // Calibrated against Table 1's P50/P90/P99 shape: a lognormal body plus a
  // WebSocket-style bounded-Pareto tail where the region needs one.
  return {
      {"Region1",
       /*bytes*/ DistSpec::lognormal(243, 0.22),
       /*ms*/ DistSpec::lognormal(2.0, 1.18),
       /*ws frac*/ 0.015,
       /*ws bytes*/ DistSpec::pareto(1.1, 1800, 30'000),
       /*ws ms*/ DistSpec::pareto(1.2, 20, 300)},
      {"Region2",
       DistSpec::lognormal(831, 1.12),
       DistSpec::lognormal(10.0, 1.60),
       0.014,
       DistSpec::pareto(1.2, 6000, 40'000),
       DistSpec::pareto(0.30, 3000, 200'000)},
      {"Region3",
       DistSpec::lognormal(566, 0.97),
       DistSpec::lognormal(3.0, 1.45),
       0.105,
       DistSpec::pareto(0.55, 800, 300'000),
       DistSpec::pareto(0.38, 250, 300'000)},
      {"Region4",
       DistSpec::lognormal(721, 0.36),
       DistSpec::lognormal(4.0, 1.0),
       0.012,
       DistSpec::pareto(1.1, 4000, 25'000),
       DistSpec::pareto(0.9, 150, 3000)},
  };
}

TenantModel TenantModel::from_mix(const RegionMix& mix, uint32_t num_tenants,
                                  double skew) {
  TenantModel tm;
  tm.num_tenants = num_tenants;
  tm.zipf_skew = skew;
  tm.tenant_case.resize(num_tenants);

  // Zipf share of each tenant rank; assign tenants to cases greedily so the
  // cumulative per-case share tracks the region mix.
  ZipfSampler zipf(num_tenants, skew);
  double assigned[4] = {};
  for (uint32_t t = 0; t < num_tenants; ++t) {
    const double share = zipf.pmf(t);
    // Pick the case with the largest remaining deficit.
    int best = 0;
    double best_deficit = -1e9;
    for (int c = 0; c < 4; ++c) {
      const double deficit = mix.case_share[c] - assigned[c];
      if (deficit > best_deficit) {
        best_deficit = deficit;
        best = c;
      }
    }
    tm.tenant_case[t] = best + 1;  // case ids are 1-based
    assigned[best] += share;
  }
  return tm;
}

}  // namespace hermes::sim
