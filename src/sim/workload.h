// Workload generation: the four traffic cases of Table 3, region mixes of
// Tables 1/4, tenant skew, long-lived-connection surges (Fig. 3), and
// hang-prone poison traffic (Fig. 11).
//
// All randomness flows from the owning simulation's Rng, so a (seed,
// pattern) pair reproduces a workload exactly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "simcore/rng.h"
#include "util/types.h"

namespace hermes::sim {

// A small algebra of sampling distributions, configurable per pattern.
struct DistSpec {
  enum class Kind : uint8_t { Const, Uniform, Exp, Lognormal, ParetoBounded };
  Kind kind = Kind::Const;
  // Const: a. Uniform: [a, b]. Exp: mean a. Lognormal: median a, sigma b.
  // ParetoBounded: shape a, lo b, hi c.
  double a = 0, b = 0, c = 0;

  static DistSpec constant(double v) { return {Kind::Const, v, 0, 0}; }
  static DistSpec uniform(double lo, double hi) {
    return {Kind::Uniform, lo, hi, 0};
  }
  static DistSpec exponential(double mean) { return {Kind::Exp, mean, 0, 0}; }
  static DistSpec lognormal(double median, double sigma) {
    return {Kind::Lognormal, median, sigma, 0};
  }
  static DistSpec pareto(double shape, double lo, double hi) {
    return {Kind::ParetoBounded, shape, lo, hi};
  }

  double sample(Rng& rng) const;
};

// One tenant class's traffic description.
struct TrafficPattern {
  std::string name;
  double cps = 1000;                  // new connections per second (Poisson)
  DistSpec requests_per_conn = DistSpec::constant(1);
  DistSpec request_cost_us = DistSpec::lognormal(200, 0.5);
  DistSpec request_bytes = DistSpec::lognormal(600, 1.0);
  DistSpec request_gap_us = DistSpec::exponential(10'000);  // within a conn
  // WebSocket-ish share: single long-lived request with huge size/cost tail
  // (paper Table 1, Region3).
  double websocket_fraction = 0;
  DistSpec websocket_cost_us = DistSpec::pareto(1.1, 5'000, 50'000'000);
  // Poison share: requests that wedge the worker (Appendix C case 1).
  double poison_fraction = 0;
  DistSpec poison_cost_us = DistSpec::uniform(300'000, 2'000'000);
};

// The paper's four canonical cases (§6.2, Table 3), scaled to a simulated
// LB with `workers` cores. `load` is the replay multiplier: 1 = light,
// 2 = medium, 3 = heavy (the paper replays captured traffic at 2-3x).
TrafficPattern case_pattern(int case_id, uint32_t workers, double load);

// Region mixes (Table 4): fraction of each case's traffic per region.
struct RegionMix {
  std::string name;
  double case_share[4];  // shares of cases 1..4, sum 1
};
std::vector<RegionMix> paper_region_mixes();

// Table 1-style generators: per-region request size / processing time.
struct RegionTraffic {
  std::string name;
  DistSpec request_bytes;
  DistSpec processing_ms;
  double websocket_fraction;
  DistSpec websocket_bytes;
  DistSpec websocket_ms;
};
std::vector<RegionTraffic> paper_region_traffic();

// Multi-tenant production-like mix: tenants drawn Zipf-skewed across ports,
// each tenant pinned to one case pattern.
struct TenantModel {
  uint32_t num_tenants = 64;
  double zipf_skew = 1.2;
  // Tenant index -> which case pattern it runs (assigned round-robin over
  // the region mix by cumulative share).
  std::vector<int> tenant_case;

  static TenantModel from_mix(const RegionMix& mix, uint32_t num_tenants,
                              double skew);
};

}  // namespace hermes::sim
