// Discrete-event simulation core: a monotone virtual clock plus a
// priority queue of timestamped callbacks.
//
// All of netsim/ and sim/ is driven by one EventQueue. Determinism rule:
// events at equal timestamps fire in insertion order (stable tie-break by
// sequence number), so runs are exactly reproducible for a given seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "util/check.h"
#include "util/types.h"

namespace hermes::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  // Opaque handle for cancellation. Cancelling an already-fired or already-
  // cancelled event is a harmless no-op.
  class Handle {
   public:
    Handle() = default;

   private:
    friend class EventQueue;
    explicit Handle(uint64_t seq) : seq_(seq) {}
    uint64_t seq_ = 0;  // 0 = null handle
  };

  SimTime now() const { return now_; }

  // Schedule `cb` to run at absolute time `at` (must be >= now()).
  Handle schedule_at(SimTime at, Callback cb) {
    HERMES_CHECK_MSG(at >= now_, "cannot schedule in the past");
    const uint64_t seq = ++next_seq_;
    heap_.push(Entry{at, seq, std::move(cb)});
    ++live_;
    return Handle{seq};
  }

  Handle schedule_after(SimTime delay, Callback cb) {
    return schedule_at(now_ + delay, std::move(cb));
  }

  void cancel(Handle h) {
    if (h.seq_ != 0) cancelled_.push_back(h.seq_);
  }

  bool empty() const { return live_ == 0; }
  size_t pending() const { return live_; }

  // Run the next event; returns false if the queue is empty.
  bool step() {
    while (!heap_.empty()) {
      Entry e = pop_top();
      if (is_cancelled(e.seq)) continue;
      now_ = e.at;
      e.cb();
      return true;
    }
    return false;
  }

  // Run until the queue drains or the clock passes `until`.
  // Events scheduled exactly at `until` are executed.
  void run_until(SimTime until) {
    while (!heap_.empty()) {
      if (heap_.top().at > until) break;
      Entry e = pop_top();
      if (is_cancelled(e.seq)) continue;
      now_ = e.at;
      e.cb();
    }
    if (now_ < until) now_ = until;
  }

  void run_all() {
    while (step()) {
    }
  }

 private:
  struct Entry {
    SimTime at;
    uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;  // stable FIFO among equal timestamps
    }
  };

  Entry pop_top() {
    Entry e = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    --live_;
    return e;
  }

  bool is_cancelled(uint64_t seq) {
    for (size_t i = 0; i < cancelled_.size(); ++i) {
      if (cancelled_[i] == seq) {
        cancelled_[i] = cancelled_.back();
        cancelled_.pop_back();
        return true;
      }
    }
    return false;
  }

  SimTime now_ = SimTime::zero();
  uint64_t next_seq_ = 0;
  size_t live_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::vector<uint64_t> cancelled_;
};

// A self-rescheduling event body. Wraps `f(self)` where `self` may be passed
// back to schedule_at/schedule_after to re-arm the same body; every queue
// entry owns its own copy of the captured state. Recurring events must use
// this rather than the shared_ptr<function> self-capture idiom: a closure
// holding a shared_ptr to itself is a refcount cycle that never frees once
// the queue stops before the closure's final firing.
template <class F>
class Rearming {
 public:
  explicit Rearming(F f) : f_(std::move(f)) {}
  void operator()() { f_(*this); }

 private:
  F f_;
};

template <class F>
Rearming(F) -> Rearming<F>;

}  // namespace hermes::sim
