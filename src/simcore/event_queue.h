// Discrete-event simulation core: a monotone virtual clock plus a calendar
// of timestamped callbacks.
//
// All of netsim/ and sim/ is driven by one EventQueue. Determinism rule:
// events at equal timestamps fire in insertion order (stable FIFO
// tie-break), so runs are exactly reproducible for a given seed.
//
// Two implementations share one interface:
//
//   EventQueue      the production engine: a hierarchical timing wheel over
//                   an indexed event calendar. Event records live in a
//                   free-listed slab (indexed by generation-tagged handles,
//                   so cancel() is O(1) with no per-event heap node), and
//                   the wheel gives O(1) schedule plus O(levels) amortized
//                   fire — no per-event priority-queue churn, which is what
//                   the million-connection fleet simulation needs.
//   HeapEventQueue  the retained reference: the original binary-heap
//                   implementation, kept verbatim as the oracle that
//                   tests/event_wheel_test.cc validates the wheel against
//                   bit-identically (same firing order, same clock).
//
// Wheel geometry: kWheelLevels levels of 64 slots at 1 ns tick granularity.
// Level l slots span 64^l ns, so the in-wheel horizon is 64^kWheelLevels ns
// (~68.7 simulated seconds for 6 levels) past the level-(top) window start;
// events beyond it sit in an overflow list that is redistributed when the
// wheel advances that far (rare: once per 64^levels ns). Because level-0
// slots are a single nanosecond wide, every record in a level-0 slot shares
// one timestamp, and slot chains are FIFO by construction (cascades
// preserve relative order and fresh schedules append), so draining a slot
// head-to-tail reproduces the heap's (time, insertion-seq) order exactly.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "util/check.h"
#include "util/types.h"

namespace hermes::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  // Opaque handle for cancellation. Cancelling an already-fired or already-
  // cancelled event is a harmless no-op: the handle carries the record's
  // generation tag, so a reused record slot never aliases an old handle.
  class Handle {
   public:
    Handle() = default;

   private:
    friend class EventQueue;
    Handle(uint32_t idx, uint32_t gen)
        : bits_((static_cast<uint64_t>(gen) << 32) | (idx + 1ull)) {}
    uint32_t idx() const { return static_cast<uint32_t>(bits_ & 0xffffffffu) - 1; }
    uint32_t gen() const { return static_cast<uint32_t>(bits_ >> 32); }
    uint64_t bits_ = 0;  // 0 = null handle
  };

  SimTime now() const { return now_; }

  // Schedule `cb` to run at absolute time `at` (must be >= now()).
  Handle schedule_at(SimTime at, Callback cb) {
    HERMES_CHECK_MSG(at >= now_, "cannot schedule in the past");
    const uint32_t idx = alloc_record(at, std::move(cb));
    place(idx);
    ++live_;
    return Handle{idx, records_[idx].gen};
  }

  Handle schedule_after(SimTime delay, Callback cb) {
    return schedule_at(now_ + delay, std::move(cb));
  }

  void cancel(Handle h) {
    if (h.bits_ == 0) return;
    const uint32_t idx = h.idx();
    if (idx >= records_.size()) return;
    Record& r = records_[idx];
    if (r.gen != h.gen() || !r.live) return;
    r.live = false;
    r.cb = nullptr;  // release captured state eagerly
    --live_;
  }

  bool empty() const { return live_ == 0; }
  size_t pending() const { return live_; }

  // Run the next event; returns false if the queue is empty.
  bool step() {
    if (live_ == 0) return false;
    while (true) {
      const uint32_t idx = pop_next(kNoLimit);
      HERMES_DCHECK(idx != kNil);  // live_ > 0 guarantees one exists
      if (fire(idx)) return true;
    }
  }

  // Run until the queue drains or the clock passes `until`.
  // Events scheduled exactly at `until` are executed.
  void run_until(SimTime until) {
    const uint64_t limit = tick_of(until);
    while (live_ != 0) {
      const uint32_t idx = pop_next(limit);
      if (idx == kNil) break;
      fire(idx);
    }
    if (now_ < until) now_ = until;
  }

  void run_all() {
    while (step()) {
    }
  }

 private:
  static constexpr int kLevelBits = 6;
  static constexpr uint32_t kSlots = 64;
  static constexpr int kWheelLevels = 6;
  static constexpr uint32_t kNil = 0xffffffffu;
  static constexpr uint64_t kNoLimit = ~0ull;

  // One entry in the indexed event calendar. Records are slab-stored and
  // free-listed; `gen` tags each reuse so stale handles can never cancel a
  // successor event. `next` chains records within a wheel slot (or the
  // overflow list) in FIFO order.
  struct Record {
    SimTime at{};
    Callback cb;
    uint32_t gen = 0;
    uint32_t next = kNil;
    bool live = false;      // false: cancelled (still chained) or free
    bool in_free = false;
  };

  struct Slot {
    uint32_t head = kNil;
    uint32_t tail = kNil;
  };

  static uint64_t tick_of(SimTime t) { return static_cast<uint64_t>(t.ns()); }

  // Slot width of level l in ticks: 64^l.
  static constexpr uint64_t span(int level) {
    return 1ull << (kLevelBits * level);
  }
  // Ticks covered by level l's whole window: 64^(l+1).
  static constexpr uint64_t window(int level) {
    return 1ull << (kLevelBits * (level + 1));
  }

  uint32_t alloc_record(SimTime at, Callback cb) {
    uint32_t idx;
    if (!free_.empty()) {
      idx = free_.back();
      free_.pop_back();
      records_[idx].in_free = false;
    } else {
      idx = static_cast<uint32_t>(records_.size());
      records_.emplace_back();
    }
    Record& r = records_[idx];
    r.at = at;
    r.cb = std::move(cb);
    r.next = kNil;
    r.live = true;
    return idx;
  }

  void release_record(uint32_t idx) {
    Record& r = records_[idx];
    HERMES_DCHECK(!r.in_free);
    r.cb = nullptr;
    r.live = false;
    r.in_free = true;
    ++r.gen;  // stale handles die here
    free_.push_back(idx);
  }

  void append(Slot& slot, uint32_t idx) {
    records_[idx].next = kNil;
    if (slot.head == kNil) {
      slot.head = slot.tail = idx;
    } else {
      records_[slot.tail].next = idx;
      slot.tail = idx;
    }
  }

  // File a record into the lowest level whose window contains its tick, or
  // the overflow list. Windows only move forward and base_[l] <= any
  // running clock value, so t >= now() always lands somewhere.
  void place(uint32_t idx) {
    const uint64_t t = tick_of(records_[idx].at);
    for (int l = 0; l < kWheelLevels; ++l) {
      if (t < base_[l] + window(l)) {
        HERMES_DCHECK(t >= base_[l]);
        const uint32_t s = static_cast<uint32_t>((t - base_[l]) / span(l));
        append(wheel_[l][s], idx);
        occupancy_[l] |= 1ull << s;
        return;
      }
    }
    append(overflow_, idx);
    ++overflow_count_;
  }

  // Redistribute one level-l slot into level l-1, re-windowing l-1 onto the
  // slot's range. Chain order is preserved, so per-slot FIFO (= insertion
  // order) survives every cascade.
  void cascade(int l, uint32_t s) {
    base_[l - 1] = base_[l] + static_cast<uint64_t>(s) * span(l);
    uint32_t idx = wheel_[l][s].head;
    wheel_[l][s] = Slot{};
    occupancy_[l] &= ~(1ull << s);
    while (idx != kNil) {
      const uint32_t next = records_[idx].next;
      place(idx);
      idx = next;
    }
  }

  // Rebase the whole wheel onto the earliest overflow tick `min_t` and
  // refile the overflow list (order-preserving). Only called when every
  // level is empty, so no in-wheel record can conflict with the new bases.
  void rebase_from_overflow(uint64_t min_t) {
    HERMES_DCHECK(overflow_.head != kNil);
    for (int l = 0; l < kWheelLevels; ++l) {
      // Align base_[l] down to a span(l) boundary containing min_t; bases
      // stay monotonically non-increasing with level (nesting invariant).
      base_[l] = (min_t / span(l)) * span(l);
    }
    uint32_t idx = overflow_.head;
    overflow_ = Slot{};
    overflow_count_ = 0;
    while (idx != kNil) {
      const uint32_t next = records_[idx].next;
      place(idx);
      idx = next;
    }
  }

  // Pop the earliest record with tick <= limit, cascading upper levels down
  // as needed; kNil if the earliest event is beyond `limit`. Levels are
  // nested (every level-l record is at or beyond the end of level l-1's
  // window), so the earliest record always sits at the lowest occupied
  // level. Re-windowing only happens toward slots at or below `limit`, so
  // the wheel never advances past a run_until() boundary.
  uint32_t pop_next(uint64_t limit) {
    while (true) {
      int lowest = -1;
      for (int l = 0; l < kWheelLevels; ++l) {
        if (occupancy_[l] != 0) {
          lowest = l;
          break;
        }
      }
      if (lowest < 0) {
        if (overflow_.head == kNil) return kNil;
        // Everything in-wheel drained; bring the far future into range.
        uint64_t min_t = ~0ull;
        for (uint32_t i = overflow_.head; i != kNil; i = records_[i].next) {
          min_t = std::min(min_t, tick_of(records_[i].at));
        }
        if (min_t > limit) return kNil;
        rebase_from_overflow(min_t);
        continue;
      }
      const auto s = static_cast<uint32_t>(
          __builtin_ctzll(occupancy_[lowest]));
      const uint64_t slot_start =
          base_[lowest] + static_cast<uint64_t>(s) * span(lowest);
      if (slot_start > limit) return kNil;
      if (lowest == 0) {
        Slot& slot = wheel_[0][s];
        const uint32_t idx = slot.head;
        slot.head = records_[idx].next;
        if (slot.head == kNil) {
          slot.tail = kNil;
          occupancy_[0] &= ~(1ull << s);
        }
        return idx;
      }
      cascade(lowest, s);
    }
  }

  // Fire (or reap) one popped record. Returns true if a live callback ran.
  bool fire(uint32_t idx) {
    Record& r = records_[idx];
    if (!r.live) {
      release_record(idx);  // cancelled: reap lazily
      return false;
    }
    now_ = r.at;
    Callback cb = std::move(r.cb);
    --live_;
    release_record(idx);
    cb();
    return true;
  }

  SimTime now_ = SimTime::zero();
  size_t live_ = 0;
  std::vector<Record> records_;
  std::vector<uint32_t> free_;
  Slot wheel_[kWheelLevels][kSlots]{};
  uint64_t occupancy_[kWheelLevels]{};
  uint64_t base_[kWheelLevels]{};
  Slot overflow_{};
  size_t overflow_count_ = 0;
};

// The original binary-heap event queue, retained verbatim as the reference
// implementation. tests/event_wheel_test.cc drives it and EventQueue with
// identical operation scripts and requires bit-identical firing order,
// timestamps, and clock reads; it is not used on any simulation hot path.
class HeapEventQueue {
 public:
  using Callback = std::function<void()>;

  class Handle {
   public:
    Handle() = default;

   private:
    friend class HeapEventQueue;
    explicit Handle(uint64_t seq) : seq_(seq) {}
    uint64_t seq_ = 0;  // 0 = null handle
  };

  SimTime now() const { return now_; }

  Handle schedule_at(SimTime at, Callback cb) {
    HERMES_CHECK_MSG(at >= now_, "cannot schedule in the past");
    const uint64_t seq = ++next_seq_;
    heap_.push(Entry{at, seq, std::move(cb)});
    ++live_;
    return Handle{seq};
  }

  Handle schedule_after(SimTime delay, Callback cb) {
    return schedule_at(now_ + delay, std::move(cb));
  }

  void cancel(Handle h) {
    if (h.seq_ != 0) cancelled_.push_back(h.seq_);
  }

  bool empty() const { return live_ == 0; }
  size_t pending() const { return live_; }

  bool step() {
    while (!heap_.empty()) {
      Entry e = pop_top();
      if (is_cancelled(e.seq)) continue;
      now_ = e.at;
      e.cb();
      return true;
    }
    return false;
  }

  void run_until(SimTime until) {
    while (!heap_.empty()) {
      if (heap_.top().at > until) break;
      Entry e = pop_top();
      if (is_cancelled(e.seq)) continue;
      now_ = e.at;
      e.cb();
    }
    if (now_ < until) now_ = until;
  }

  void run_all() {
    while (step()) {
    }
  }

 private:
  struct Entry {
    SimTime at;
    uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;  // stable FIFO among equal timestamps
    }
  };

  Entry pop_top() {
    Entry e = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    --live_;
    return e;
  }

  bool is_cancelled(uint64_t seq) {
    for (size_t i = 0; i < cancelled_.size(); ++i) {
      if (cancelled_[i] == seq) {
        cancelled_[i] = cancelled_.back();
        cancelled_.pop_back();
        return true;
      }
    }
    return false;
  }

  SimTime now_ = SimTime::zero();
  uint64_t next_seq_ = 0;
  size_t live_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::vector<uint64_t> cancelled_;
};

// A self-rescheduling event body. Wraps `f(self)` where `self` may be passed
// back to schedule_at/schedule_after to re-arm the same body; every queue
// entry owns its own copy of the captured state. Recurring events must use
// this rather than the shared_ptr<function> self-capture idiom: a closure
// holding a shared_ptr to itself is a refcount cycle that never frees once
// the queue stops before the closure's final firing.
template <class F>
class Rearming {
 public:
  explicit Rearming(F f) : f_(std::move(f)) {}
  void operator()() { f_(*this); }

 private:
  F f_;
};

template <class F>
Rearming(F) -> Rearming<F>;

}  // namespace hermes::sim
