// Latency/size recording with percentile queries.
//
// Histogram: log-bucketed (HdrHistogram-style) over a configurable range,
// constant memory, ~1% relative error — good for P50/P90/P99/P999 queries
// over millions of samples.
//
// Also provides exact small-sample quantiles (SampleSet) and running
// mean/stddev (RunningStat, Welford) used for the paper's SD-of-CPU and
// SD-of-connections metrics (Fig. 13).
#pragma once

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "util/check.h"
#include "util/types.h"

namespace hermes::sim {

// Log-linear histogram: values are bucketed with `sub_bits` linear sub-buckets
// per power of two. With sub_bits=5 the relative error is <= 1/32.
class Histogram {
 public:
  explicit Histogram(int sub_bits = 5)
      : sub_bits_(sub_bits), sub_count_(1u << sub_bits) {
    buckets_.resize((64 - sub_bits_) * sub_count_, 0);
  }

  void record(int64_t value) {
    if (value < 0) value = 0;
    ++count_;
    sum_ += static_cast<double>(value);
    if (value > max_) max_ = value;
    if (count_ == 1 || value < min_) min_ = value;
    buckets_[index_of(static_cast<uint64_t>(value))]++;
  }

  void record(SimTime t) { record(t.ns()); }

  uint64_t count() const { return count_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0; }
  int64_t max_value() const { return max_; }
  int64_t min_value() const { return count_ ? min_ : 0; }

  // Value at quantile q in [0, 1]; returns a representative value of the
  // containing bucket (its upper edge, clamped to observed max).
  int64_t quantile(double q) const {
    if (count_ == 0) return 0;
    HERMES_DCHECK(q >= 0.0 && q <= 1.0);
    uint64_t target = static_cast<uint64_t>(std::ceil(q * static_cast<double>(count_)));
    if (target == 0) target = 1;
    uint64_t seen = 0;
    for (size_t i = 0; i < buckets_.size(); ++i) {
      seen += buckets_[i];
      if (seen >= target) {
        return std::min(bucket_upper(i), max_);
      }
    }
    return max_;
  }

  int64_t p50() const { return quantile(0.50); }
  int64_t p90() const { return quantile(0.90); }
  int64_t p99() const { return quantile(0.99); }
  int64_t p999() const { return quantile(0.999); }

  void merge(const Histogram& o) {
    HERMES_CHECK(o.buckets_.size() == buckets_.size());
    for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += o.buckets_[i];
    count_ += o.count_;
    sum_ += o.sum_;
    max_ = std::max(max_, o.max_);
    if (o.count_) min_ = count_ == o.count_ ? o.min_ : std::min(min_, o.min_);
  }

  void reset() {
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = 0;
    sum_ = 0;
    max_ = 0;
    min_ = 0;
  }

 private:
  size_t index_of(uint64_t v) const {
    if (v < sub_count_) return static_cast<size_t>(v);
    const int msb = 63 - std::countl_zero(v);
    const int bucket = msb - sub_bits_ + 1;
    const uint64_t sub = (v >> (msb - sub_bits_)) & (sub_count_ - 1);
    return static_cast<size_t>(bucket) * sub_count_ + static_cast<size_t>(sub);
  }

  int64_t bucket_upper(size_t idx) const {
    const uint64_t bucket = idx / sub_count_;
    const uint64_t sub = idx % sub_count_;
    if (bucket == 0) return static_cast<int64_t>(sub);
    const int shift = static_cast<int>(bucket) - 1;
    const uint64_t base = (sub_count_ + sub) << shift;
    const uint64_t width = 1ull << shift;
    return static_cast<int64_t>(base + width - 1);
  }

  int sub_bits_;
  uint64_t sub_count_;
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0;
  int64_t max_ = 0;
  int64_t min_ = 0;
};

// Exact quantiles for small sample sets (per-bench summary rows).
class SampleSet {
 public:
  void add(double v) {
    samples_.push_back(v);
    sorted_ = false;
  }
  size_t size() const { return samples_.size(); }

  double quantile(double q) {
    if (samples_.empty()) return 0;
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
    const double pos = q * static_cast<double>(samples_.size() - 1);
    const size_t i = static_cast<size_t>(pos);
    const double frac = pos - static_cast<double>(i);
    if (i + 1 >= samples_.size()) return samples_.back();
    return samples_[i] * (1 - frac) + samples_[i + 1] * frac;
  }

  double mean() const {
    if (samples_.empty()) return 0;
    double s = 0;
    for (double v : samples_) s += v;
    return s / static_cast<double>(samples_.size());
  }

 private:
  std::vector<double> samples_;
  bool sorted_ = false;
};

// Welford running mean / standard deviation.
class RunningStat {
 public:
  void add(double v) {
    ++n_;
    const double d = v - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (v - mean_);
  }

  uint64_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_) : 0.0;  // population variance
  }
  double stddev() const { return std::sqrt(variance()); }

  void reset() {
    n_ = 0;
    mean_ = 0;
    m2_ = 0;
  }

 private:
  uint64_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
};

}  // namespace hermes::sim
