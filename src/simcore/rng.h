// Deterministic random number generation for the simulator.
//
// One Rng per simulation, seeded explicitly; all stochastic behaviour
// (arrival processes, service times, tenant skew) flows from it so that a
// (seed, config) pair fully determines a run.
//
// The core generator is SplitMix64 feeding xoshiro256**, both public-domain
// algorithms, implemented here to avoid the unspecified distributions of
// <random> (libstdc++ vs libc++ differ, which would break cross-platform
// reproducibility of EXPERIMENTS.md numbers).
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>
#include <vector>

#include "util/check.h"
#include "util/types.h"

namespace hermes::sim {

class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 to spread the seed over the 256-bit state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  // xoshiro256** next().
  uint64_t next_u64() {
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Uniform integer in [0, n). n must be > 0.
  uint64_t next_below(uint64_t n) {
    HERMES_DCHECK(n > 0);
    // Lemire's multiply-shift rejection method (unbiased).
    uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<uint64_t>(m);
    if (lo < n) {
      const uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  double uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  bool bernoulli(double p) { return next_double() < p; }

  // Exponential with given mean (inter-arrival times of Poisson processes).
  double exponential(double mean) {
    double u = next_double();
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(1.0 - u);
  }

  // Standard normal via Box-Muller (no cached value: determinism is simpler
  // to reason about without per-call parity).
  double normal(double mean, double stddev) {
    double u1 = next_double();
    double u2 = next_double();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    const double r = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * r * std::cos(2.0 * std::numbers::pi * u2);
  }

  // Lognormal parameterized by the underlying normal's (mu, sigma).
  double lognormal(double mu, double sigma) {
    return std::exp(normal(mu, sigma));
  }

  // Bounded Pareto on [lo, hi] with shape alpha: heavy-tail request sizes
  // and WebSocket-like processing-time tails (paper Table 1, Region3).
  double bounded_pareto(double alpha, double lo, double hi) {
    HERMES_DCHECK(alpha > 0 && lo > 0 && hi > lo);
    const double u = next_double();
    const double la = std::pow(lo, alpha);
    const double ha = std::pow(hi, alpha);
    return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
  }

 private:
  static uint64_t rotl(uint64_t v, int k) { return (v << k) | (v >> (64 - k)); }
  uint64_t state_[4];
};

// Zipf sampler over [0, n) with exponent s, using precomputed CDF + binary
// search. Models heavy tenant skew (paper: top-3 tenants take 40/28/22% of a
// region's traffic).
class ZipfSampler {
 public:
  ZipfSampler(uint32_t n, double s) : cdf_(n) {
    HERMES_CHECK(n > 0);
    double sum = 0;
    for (uint32_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = sum;
    }
    for (auto& v : cdf_) v /= sum;
  }

  uint32_t sample(Rng& rng) const {
    const double u = rng.next_double();
    // Binary search the first index with cdf >= u.
    uint32_t lo = 0, hi = static_cast<uint32_t>(cdf_.size() - 1);
    while (lo < hi) {
      const uint32_t mid = lo + (hi - lo) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  // Probability mass of rank i (for tests).
  double pmf(uint32_t i) const {
    return i == 0 ? cdf_[0] : cdf_[i] - cdf_[i - 1];
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace hermes::sim
