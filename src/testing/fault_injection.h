// Scripted implementation of core::FaultInjector for torture tests.
//
// Faults are expressed as declarative knobs set before (or during) a run:
//
//   freeze_avail(w, from, until)  — worker w's heartbeat stops updating in
//                                   [from, until): the signature of a hang
//                                   that wedged *before* the avail write;
//   lag_avail(w, lag)             — w's heartbeats are written `lag` old:
//                                   a stale/skewed clock;
//   drop_next_syncs(w, n)         — w's next n bitmap publishes are lost
//                                   (dropped bpf() map-update syscalls);
//   hold_syncs(group, n)          — the next n publishes into `group` are
//                                   held back instead of applied; the test
//                                   later calls release_held() to apply
//                                   them LATE — a delayed, stale sync.
//
// Every decision is also counted, so invariant checkers can assert not
// just that the system survived, but that the faults actually fired.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "bpf/maps.h"
#include "core/fault_injection.h"
#include "util/types.h"

namespace hermes::testing {

class ScriptedFaultInjector final : public core::FaultInjector {
 public:
  struct HeldSync {
    WorkerId worker = 0;
    uint32_t group = 0;
    uint64_t bitmap = 0;
  };

  // ---- knobs -----------------------------------------------------------
  void freeze_avail(WorkerId w, SimTime from, SimTime until) {
    freezes_[w] = {from, until};
  }
  void lag_avail(WorkerId w, SimTime lag) { lags_[w] = lag; }
  void drop_next_syncs(WorkerId w, uint32_t n) { drops_[w] += n; }
  void hold_syncs(uint32_t group, uint32_t n) { holds_[group] += n; }

  // Apply every held (delayed) sync to `sel`, oldest first — stale bitmaps
  // overwriting fresh ones, the worst-case reordering of the lock-free
  // last-write-wins publish. Returns how many were applied.
  size_t release_held(bpf::ArrayMap& sel) {
    size_t applied = 0;
    for (const HeldSync& h : held_) {
      sel.store_u64(h.group, h.bitmap);
      ++applied;
    }
    held_.clear();
    return applied;
  }
  const std::vector<HeldSync>& held() const { return held_; }

  // ---- counters --------------------------------------------------------
  struct Counts {
    uint64_t avail_frozen = 0;
    uint64_t avail_lagged = 0;
    uint64_t syncs_dropped = 0;
    uint64_t syncs_held = 0;
  };
  const Counts& counts() const { return counts_; }

  // ---- core::FaultInjector ---------------------------------------------
  SimTime on_avail_update(WorkerId w, SimTime now) override {
    if (auto it = freezes_.find(w); it != freezes_.end()) {
      if (now >= it->second.from && now < it->second.until) {
        ++counts_.avail_frozen;
        return SimTime::nanos(-1);  // suppress the write
      }
    }
    if (auto it = lags_.find(w); it != lags_.end()) {
      ++counts_.avail_lagged;
      return now - it->second;
    }
    return now;
  }

  bool on_bitmap_sync(WorkerId w, uint32_t group, uint64_t bitmap) override {
    if (auto it = drops_.find(w); it != drops_.end() && it->second > 0) {
      --it->second;
      ++counts_.syncs_dropped;
      return false;
    }
    if (auto it = holds_.find(group); it != holds_.end() && it->second > 0) {
      --it->second;
      ++counts_.syncs_held;
      held_.push_back({w, group, bitmap});
      return false;
    }
    return true;
  }

 private:
  struct Window {
    SimTime from;
    SimTime until;
  };
  std::map<WorkerId, Window> freezes_;
  std::map<WorkerId, SimTime> lags_;
  std::map<WorkerId, uint32_t> drops_;
  std::map<uint32_t, uint32_t> holds_;
  std::vector<HeldSync> held_;
  Counts counts_;
};

}  // namespace hermes::testing
