#include "testing/fuzz_gen.h"

#include <string>

#include "bpf/assembler.h"

namespace hermes::testing {

namespace {

using bpf::Assembler;
using bpf::HelperId;
using bpf::R;
using bpf::r0;
using bpf::r1;
using bpf::r2;
using bpf::r3;
using bpf::r4;
using bpf::r5;
using bpf::r6;
using bpf::r10;
using sim::Rng;

// Scalar working registers; r6 holds the saved context pointer.
constexpr R kUsable[] = {bpf::r7, bpf::r8, bpf::r9};

R pick_usable(Rng& rng) { return kUsable[rng.next_below(3)]; }

// Mixed-magnitude immediates: small constants, powers of two, full-width.
int64_t rand_imm(Rng& rng) {
  switch (rng.next_below(4)) {
    case 0: return static_cast<int64_t>(rng.next_below(16));
    case 1: return static_cast<int64_t>(rng.next_below(64)) - 32;
    case 2: return int64_t{1} << rng.next_below(63);
    default: return static_cast<int64_t>(rng.next_u64());
  }
}

void emit_alu_atom(Assembler& a, Rng& rng) {
  const uint32_t n = 1 + static_cast<uint32_t>(rng.next_below(3));
  for (uint32_t i = 0; i < n; ++i) {
    const R d = pick_usable(rng);
    const R s = pick_usable(rng);
    const int64_t imm = rand_imm(rng);
    const int64_t nz = imm == 0 ? 1 : imm;  // div/mod immediates must be != 0
    switch (rng.next_below(20)) {
      case 0: a.add(d, s); break;
      case 1: a.add(d, imm); break;
      case 2: a.sub(d, s); break;
      case 3: a.mul(d, imm); break;
      case 4: a.div(d, s); break;      // div-by-zero reg: defined (-> 0)
      case 5: a.div(d, nz); break;
      case 6: a.mod(d, s); break;
      case 7: a.mod(d, nz); break;
      case 8: a.and_(d, imm); break;
      case 9: a.or_(d, s); break;
      case 10: a.xor_(d, imm); break;
      case 11: a.lsh(d, static_cast<int64_t>(rng.next_below(70))); break;
      case 12: a.rsh(d, static_cast<int64_t>(rng.next_below(70))); break;
      case 13: a.arsh(d, static_cast<int64_t>(rng.next_below(70))); break;
      case 14: a.neg(d); break;
      case 15: a.mov(d, imm); break;
      case 16: a.add32(d, s); break;
      case 17: a.mul32(d, static_cast<int32_t>(imm)); break;
      case 18: a.xor32(d, s); break;
      case 19:
        a.mov32(d, static_cast<int32_t>(imm));
        break;
    }
  }
}

void emit_stack_atom(Assembler& a, Rng& rng) {
  const R v = pick_usable(rng);
  const R d = pick_usable(rng);
  switch (rng.next_below(5)) {
    case 0: {  // 64-bit round trip
      const int32_t off = -8 * (1 + static_cast<int32_t>(rng.next_below(8)));
      a.stx_dw(r10, off, v);
      a.ldx_dw(d, r10, off);
      break;
    }
    case 1: {  // 32-bit store, 8/16/32-bit reads of it
      const int32_t off = -4 * (1 + static_cast<int32_t>(rng.next_below(16)));
      a.stx_w(r10, off, v);
      if (rng.bernoulli(0.5)) a.ldx_b(d, r10, off);
      break;
    }
    case 2: {  // immediate stores
      const int32_t off = -8 * (1 + static_cast<int32_t>(rng.next_below(8)));
      a.st_dw(r10, off, static_cast<int32_t>(rand_imm(rng)));
      a.ldx_dw(d, r10, off);
      break;
    }
    case 3: {  // byte traffic
      const int32_t off = -1 - static_cast<int32_t>(rng.next_below(16));
      a.stx_b(r10, off, v);
      a.ldx_b(d, r10, off);
      break;
    }
    default: {  // read the zeroed deep stack
      const int32_t off =
          -8 * (40 + static_cast<int32_t>(rng.next_below(24)));
      a.ldx_dw(d, r10, off);
      break;
    }
  }
}

void emit_ctx_load_atom(Assembler& a, Rng& rng) {
  const R d = pick_usable(rng);
  switch (rng.next_below(3)) {
    case 0: a.ldx_w(d, r6, 4 * static_cast<int32_t>(rng.next_below(6))); break;
    case 1: a.ldx_h(d, r6, 2 * static_cast<int32_t>(rng.next_below(12))); break;
    default: a.ldx_b(d, r6, static_cast<int32_t>(rng.next_below(24))); break;
  }
}

void emit_lookup_atom(Assembler& a, Rng& rng, const GenOptions& opt,
                      int& label_n) {
  // Key sometimes out of range: exercises the lookup-returns-null path.
  const auto key = static_cast<int32_t>(rng.next_below(opt.array_entries + 2));
  const std::string skip = "g" + std::to_string(label_n++);
  a.st_w(r10, -4, key);
  a.ld_map_fd(r1, 0);
  a.mov(r2, r10);
  a.add(r2, -4);
  a.call(HelperId::MapLookupElem);
  a.jeq(r0, 0, skip);
  if (rng.bernoulli(0.7)) {
    a.ldx_dw(pick_usable(rng), r0, 0);  // read the 8-byte value
  } else {
    a.stx_dw(r0, 0, pick_usable(rng));  // overwrite it with a scalar
  }
  a.label(skip);
}

void emit_update_atom(Assembler& a, Rng& rng, const GenOptions& opt) {
  const auto key = static_cast<int32_t>(rng.next_below(opt.array_entries + 2));
  a.st_w(r10, -4, key);
  if (rng.bernoulli(0.5)) {
    a.st_dw(r10, -16, static_cast<int32_t>(rand_imm(rng)));
  } else {
    a.stx_dw(r10, -16, pick_usable(rng));
  }
  a.ld_map_fd(r1, 0);
  a.mov(r2, r10);
  a.add(r2, -4);
  a.mov(r3, r10);
  a.add(r3, -16);
  a.mov(r4, 0);
  a.call(HelperId::MapUpdateElem);
  if (rng.bernoulli(0.5)) a.mov(pick_usable(rng), r0);
}

void emit_sk_select_atom(Assembler& a, Rng& rng, const GenOptions& opt) {
  // Key sometimes names an empty / out-of-range slot (-ENOENT path).
  const auto key = static_cast<int32_t>(rng.next_below(opt.sock_entries + 2));
  a.st_w(r10, -4, key);
  a.mov(r1, r6);
  a.ld_map_fd(r2, 1);
  a.mov(r3, r10);
  a.add(r3, -4);
  a.mov(r4, 0);
  a.call(HelperId::SkSelectReuseport);
  if (rng.bernoulli(0.5)) a.mov(pick_usable(rng), r0);
}

void emit_helper_atom(Assembler& a, Rng& rng) {
  a.call(rng.bernoulli(0.5) ? HelperId::KtimeGetNs : HelperId::GetPrandomU32);
  a.mov(pick_usable(rng), r0);
}

// Variable-offset memory access whose bound the range analysis must
// prove: a masked or branch-guarded index into the stack or a map value.
// These were categorically rejected by the pre-analysis verifier.
void emit_range_access_atom(Assembler& a, Rng& rng, int& label_n) {
  const R d = pick_usable(rng);
  const R idx = pick_usable(rng);
  switch (rng.next_below(3)) {
    case 0: {  // mask-bounded stack byte access
      const int64_t mask = (int64_t{1} << (1 + rng.next_below(4))) - 1;
      a.mov(r4, idx);
      a.and_(r4, mask);
      a.mov(r5, r10);
      a.add(r5, -1 - mask);
      a.add(r5, r4);
      if (rng.bernoulli(0.5)) {
        a.ldx_b(d, r5, 0);
      } else {
        a.stx_b(r5, 0, idx);
      }
      break;
    }
    case 1: {  // branch-guard-bounded stack access
      const std::string skip = "r" + std::to_string(label_n++);
      a.mov(r4, idx);
      a.jgt(r4, 15, skip);
      a.mov(r5, r10);
      a.add(r5, -16);
      a.add(r5, r4);
      a.ldx_b(d, r5, 0);
      a.label(skip);
      break;
    }
    default: {  // mask-bounded access into a null-checked map value
      const std::string skip = "r" + std::to_string(label_n++);
      a.st_w(r10, -4, 0);
      a.ld_map_fd(r1, 0);
      a.mov(r2, r10);
      a.add(r2, -4);
      a.call(HelperId::MapLookupElem);
      a.jeq(r0, 0, skip);
      a.mov(r4, idx);
      a.and_(r4, 7);  // value_size is 8
      a.add(r0, r4);
      a.ldx_b(d, r0, 0);
      a.label(skip);
      break;
    }
  }
}

// Counted loop with a provable trip bound: r5 counts up to a small
// constant, the body does scalar work on the usable registers. The
// verifier accepts it via per-iteration loop analysis.
void emit_loop_atom(Assembler& a, Rng& rng, int& label_n) {
  const std::string top = "l" + std::to_string(label_n++);
  const auto trips = static_cast<int64_t>(1 + rng.next_below(8));
  const R d = pick_usable(rng);
  const R s = pick_usable(rng);
  a.mov(r5, 0);
  a.label(top);
  switch (rng.next_below(4)) {
    case 0: a.add(d, s); break;
    case 1: a.xor_(d, s); break;
    case 2: a.add32(d, static_cast<int32_t>(rand_imm(rng))); break;
    default: a.add(d, r5); break;
  }
  a.add(r5, 1);
  a.jlt(r5, trips, top);
}

// Deliberately dubious instructions: most are rejected by the verifier
// (that's the point), but any that slip through are differential-safe —
// no pointer is ever copied toward memory or arithmetic.
void emit_wild_atom(Assembler& a, Rng& rng, int& label_n) {
  const R d = pick_usable(rng);
  switch (rng.next_below(9)) {
    case 0: a.div(d, 0); break;                       // rejected: div by 0
    case 1: a.mod32(d, 0); break;                     // rejected: mod by 0
    case 2:  // context load, offset may exceed the readable prefix
      a.ldx_w(d, r6, 4 * static_cast<int32_t>(rng.next_below(10)));
      break;
    case 3:  // stack load, offset may fall outside the 512-byte frame
      a.ldx_dw(d, r10, -8 * (1 + static_cast<int32_t>(rng.next_below(80))));
      break;
    case 4: a.add(r3, r3); break;                     // rejected: r3 uninit
    case 5: a.mov32(d, r6); break;                    // rejected: truncates ptr
    case 6: {  // unmasked variable stack offset: usually unprovable
      a.mov(r5, r10);
      a.add(r5, d);
      a.ldx_b(pick_usable(rng), r5, 0);
      break;
    }
    case 7: {  // no-progress loop: rejected at the abstract fixpoint
      const std::string top = "w" + std::to_string(label_n++);
      a.label(top);
      a.add(d, 1);
      a.ja(top);
      break;
    }
    default: {  // terminating loop, but past the analysis trip bound
      const std::string top = "w" + std::to_string(label_n++);
      a.mov(r5, 0);
      a.label(top);
      a.add(r5, 1);
      a.jlt(r5, 100000, top);
      break;
    }
  }
}

void emit_cond_jump(Assembler& a, Rng& rng, const std::string& label) {
  const R d = pick_usable(rng);
  const R s = pick_usable(rng);
  const int64_t imm = rand_imm(rng);
  switch (rng.next_below(7)) {
    case 0: a.jeq(d, imm, label); break;
    case 1: a.jne(d, imm, label); break;
    case 2: a.jgt(d, imm, label); break;
    case 3: a.jle(d, imm, label); break;
    case 4: a.jset(d, imm, label); break;
    case 5: a.jlt(d, s, label); break;
    default: a.jge(d, s, label); break;
  }
}

void emit_atom(Assembler& a, Rng& rng, const GenOptions& opt, int& label_n,
               GenStats& stats) {
  if (rng.bernoulli(opt.wild_prob)) {
    emit_wild_atom(a, rng, label_n);
    return;
  }
  switch (rng.next_below(10)) {
    case 0: case 1: emit_alu_atom(a, rng); break;
    case 2: emit_stack_atom(a, rng); break;
    case 3: emit_ctx_load_atom(a, rng); break;
    case 4: emit_lookup_atom(a, rng, opt, label_n); break;
    case 5: emit_update_atom(a, rng, opt); break;
    case 6: emit_sk_select_atom(a, rng, opt); break;
    case 7:
      emit_range_access_atom(a, rng, label_n);
      stats.has_range_access = true;
      break;
    case 8:
      emit_loop_atom(a, rng, label_n);
      stats.has_loop = true;
      break;
    default: emit_helper_atom(a, rng); break;
  }
}

}  // namespace

bpf::Program gen_program(sim::Rng& rng, const GenOptions& opt,
                         GenStats* stats) {
  Assembler a;
  int label_n = 0;
  GenStats local;
  GenStats& st = stats != nullptr ? *stats : local;
  st = GenStats{};

  // Prologue: save ctx, initialize every working register to a scalar.
  a.mov(r6, r1);
  for (const R u : kUsable) {
    switch (rng.next_below(3)) {
      case 0: a.mov(u, rand_imm(rng)); break;
      case 1: a.ld_imm64(u, rng.next_u64()); break;
      default:
        a.ldx_w(u, r6, 4 * static_cast<int32_t>(rng.next_below(6)));
        break;
    }
  }

  const uint32_t atoms =
      opt.min_atoms +
      static_cast<uint32_t>(rng.next_below(opt.max_atoms - opt.min_atoms + 1));
  for (uint32_t i = 0; i < atoms; ++i) {
    // Optionally guard the atom with a forward conditional jump over it:
    // both paths stay verifiable because atoms only write scalar state.
    std::string guard;
    if (rng.bernoulli(opt.jump_prob)) {
      guard = "j" + std::to_string(label_n++);
      emit_cond_jump(a, rng, guard);
    }
    emit_atom(a, rng, opt, label_n, st);
    if (!guard.empty()) a.label(guard);
  }

  // Epilogue: r0 must hold a scalar at exit.
  if (rng.bernoulli(0.5)) {
    a.mov(r0, rand_imm(rng));
  } else {
    a.mov(r0, pick_usable(rng));
  }
  a.exit();
  return a.finish();
}

bpf::ReuseportCtx gen_ctx(sim::Rng& rng) {
  bpf::ReuseportCtx ctx;
  ctx.len = static_cast<uint32_t>(rng.next_below(2000));
  ctx.eth_protocol = rng.bernoulli(0.5) ? 0x0800 : 0x86dd;
  ctx.ip_protocol = rng.bernoulli(0.9) ? 6 : 17;
  ctx.bind_inany = static_cast<uint32_t>(rng.next_below(2));
  ctx.hash = static_cast<uint32_t>(rng.next_u64());
  ctx.hash2 = static_cast<uint32_t>(rng.next_u64());
  return ctx;
}

}  // namespace hermes::testing
