// Seeded random eBPF program generator for differential fuzzing.
//
// Programs are built through bpf::Assembler out of small "atoms" — ALU
// bursts, stack traffic, context loads, whole helper-call gadgets
// (lookup + null-check, map update, sk_select_reuseport), counted loops
// with provable trip bounds, variable-offset accesses the range analysis
// must prove (masked or branch-guarded indices), optional forward
// conditional jumps over atoms, and a sprinkling of deliberately dubious
// "wild" instructions that exercise the verifier's rejection paths
// (uninitialized reads, out-of-bounds offsets, zero divisors, unbounded
// variable offsets, unprovable loops).
//
// The generator is typestate-aware — it keeps scalar work in r7-r9, the
// saved context pointer in r6, and gadget scratch in r0-r5 — so the large
// majority of its output passes the verifier, which is what makes it
// useful for *differential* testing (a fuzzer whose programs are all
// rejected tests only the verifier's first line).
//
// Crucially, no generated program ever stores a pointer to memory: only
// scalars and immediates reach the stack or map values. That guarantees
// every observable output (r0, context selection, final map bytes) is a
// pure function of the program + inputs, never of host addresses — the
// property that makes VM-vs-reference-interpreter comparison sound.
//
// Everything is a deterministic function of the sim::Rng passed in: one
// seed reproduces the exact program and context.
#pragma once

#include "bpf/insn.h"
#include "simcore/rng.h"

namespace hermes::testing {

struct GenOptions {
  uint32_t min_atoms = 3;
  uint32_t max_atoms = 14;
  double jump_prob = 0.30;  // chance an atom is guarded by a forward jump
  double wild_prob = 0.10;  // chance of a dubious wild atom
  // Shape of the harness maps the program is generated against:
  // slot 0 = ArrayMap(array_entries, 8), slot 1 = SockArray(sock_entries).
  uint32_t array_entries = 2;
  uint32_t sock_entries = 8;
};

// What the generator actually emitted, so the torture harness can assert
// that interesting program classes (bounded loops, range-proven
// variable-offset accesses) both occur and pass verification.
struct GenStats {
  bool has_loop = false;          // a counted backward-edge loop atom
  bool has_range_access = false;  // a masked/guarded variable-offset access
};

bpf::Program gen_program(sim::Rng& rng, const GenOptions& opt = {},
                         GenStats* stats = nullptr);

// Random reuseport context (hashes, lengths, protocols).
bpf::ReuseportCtx gen_ctx(sim::Rng& rng);

}  // namespace hermes::testing
