#include "testing/interleave.h"

#include <algorithm>
#include <sstream>

#include "util/check.h"

namespace hermes::testing {

std::string to_string(SchedulePolicy p) {
  switch (p) {
    case SchedulePolicy::RandomWalk: return "random-walk";
    case SchedulePolicy::BoundedPreemption: return "bounded-preemption";
  }
  return "?";
}

uint64_t fnv1a(uint64_t h, const std::string& s) {
  for (const char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string ExploreResult::report(size_t tail) const {
  std::ostringstream os;
  os << "interleaving " << (ok ? "OK" : "FAILED") << "\n"
     << "  seed=" << seed << " policy=" << to_string(policy);
  if (policy == SchedulePolicy::BoundedPreemption) {
    os << " preemption_budget=" << preemption_budget;
  }
  os << " steps=" << steps_executed << " trace_hash=0x" << std::hex
     << trace_hash << std::dec << "\n";
  if (!ok) {
    os << "  violated at step " << failure_step << ": " << failure << "\n";
  }
  const size_t n = trace.size();
  const size_t from = n > tail ? n - tail : 0;
  if (from > 0) os << "  ... (" << from << " earlier steps elided)\n";
  for (size_t i = from; i < n; ++i) os << "  " << trace[i] << "\n";
  os << "  replay: ExploreOptions{.seed=" << seed << ", .policy=SchedulePolicy::"
     << (policy == SchedulePolicy::RandomWalk ? "RandomWalk"
                                              : "BoundedPreemption")
     << "}\n";
  return os.str();
}

ExploreResult InterleavingExplorer::run() {
  sim::Rng rng(opts_.seed);
  ExploreResult res;
  res.seed = opts_.seed;
  res.policy = opts_.policy;
  res.preemption_budget = opts_.preemption_budget;
  res.trace_hash = kFnvOffset;

  const size_t n = threads_.size();
  std::vector<size_t> next(n, 0);  // per-thread program counter
  size_t total_steps = 0;
  for (const auto& t : threads_) total_steps += t.steps_.size();

  // BoundedPreemption state: random priorities (higher value wins) and d
  // seeded preemption points over the global step index.
  std::vector<uint64_t> prio(n);
  std::vector<size_t> preempt_at;
  if (opts_.policy == SchedulePolicy::BoundedPreemption) {
    for (size_t i = 0; i < n; ++i) prio[i] = rng.next_u64();
    for (uint32_t i = 0; i < opts_.preemption_budget && total_steps > 1; ++i) {
      preempt_at.push_back(1 + rng.next_below(total_steps - 1));
    }
    std::sort(preempt_at.begin(), preempt_at.end());
  }
  uint64_t next_low_prio = 0;  // descending: each demotion goes below all

  size_t step_idx = 0;
  std::vector<size_t> runnable;
  while (true) {
    runnable.clear();
    for (size_t i = 0; i < n; ++i) {
      if (next[i] < threads_[i].steps_.size()) runnable.push_back(i);
    }
    if (runnable.empty()) break;

    size_t chosen;
    if (opts_.policy == SchedulePolicy::RandomWalk) {
      chosen = runnable[rng.next_below(runnable.size())];
    } else {
      // Demote the currently-highest thread at each preemption point.
      chosen = runnable.front();
      for (size_t i : runnable) {
        if (prio[i] > prio[chosen]) chosen = i;
      }
      if (!preempt_at.empty() && step_idx >= preempt_at.front()) {
        preempt_at.erase(preempt_at.begin());
        prio[chosen] = next_low_prio--;
        // Re-pick under the demoted priority.
        chosen = runnable.front();
        for (size_t i : runnable) {
          if (prio[i] > prio[chosen]) chosen = i;
        }
      }
    }

    auto& thread = threads_[chosen];
    const auto& step = thread.steps_[next[chosen]];
    step.fn();
    ++next[chosen];

    std::ostringstream line;
    line << step_idx << "  " << thread.name_ << "." << step.name;
    res.trace.push_back(line.str());
    res.trace_hash = fnv1a(res.trace_hash, res.trace.back());
    res.steps_executed = ++step_idx;

    for (const auto& inv : invariants_) {
      std::string detail = inv.check();
      if (!detail.empty()) {
        res.ok = false;
        res.failure = inv.name + ": " + detail;
        res.failure_step = step_idx - 1;
        return res;
      }
    }
  }
  HERMES_CHECK(res.steps_executed == total_steps);
  return res;
}

}  // namespace hermes::testing
