// Deterministic interleaving explorer for the lock-free closed loop.
//
// The WST / cascade-filter / bitmap-sync protocol is lock-free by design:
// every worker writes only its own WST slot, readers take unsynchronized
// snapshots, and the published bitmap is a last-write-wins 8-byte store.
// The paper argues this is safe; this explorer lets tests *shake* that
// argument mechanically.
//
// A test decomposes each simulated worker into a script of atomic steps
// (heartbeat write, pending-count update, filter run, bitmap publish, ...).
// The explorer then executes one global interleaving of those steps chosen
// by a seeded schedule, checking every registered invariant after every
// single step. Two schedule families:
//
//   * RandomWalk — uniformly random runnable thread each step; good
//     breadth, finds shallow orderings quickly;
//   * BoundedPreemption — PCT-style: threads run by random priority and
//     are preempted at only d seeded points; with small d this
//     concentrates probability on low-preemption-count bugs, which is
//     where real lock-free protocol races live.
//
// Everything derives from one uint64 seed: the same seed replays the same
// schedule, the same trace, and the same failure report, bit for bit. A
// failing run's report() embeds the seed so it can be replayed standalone.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "simcore/rng.h"

namespace hermes::testing {

enum class SchedulePolicy : uint8_t { RandomWalk, BoundedPreemption };

std::string to_string(SchedulePolicy p);

struct ExploreOptions {
  uint64_t seed = 0;
  SchedulePolicy policy = SchedulePolicy::RandomWalk;
  // BoundedPreemption only: number of seeded preemption points.
  uint32_t preemption_budget = 3;
  // Trace lines kept in the failure report (full trace is always hashed).
  size_t report_tail = 64;
};

struct ExploreResult {
  bool ok = true;
  std::string failure;        // "<invariant>: <detail>", empty when ok
  size_t failure_step = 0;    // global step index of the violation
  size_t steps_executed = 0;
  uint64_t trace_hash = 0;    // FNV-1a over all trace lines (determinism)
  std::vector<std::string> trace;  // "step#  thread.step_name"

  // Echo of the options, so a report is self-contained.
  uint64_t seed = 0;
  SchedulePolicy policy = SchedulePolicy::RandomWalk;
  uint32_t preemption_budget = 0;

  // Human-readable reproduction recipe: seed, policy, failure, trace tail.
  std::string report(size_t tail = 64) const;
};

class InterleavingExplorer {
 public:
  explicit InterleavingExplorer(ExploreOptions opts) : opts_(opts) {}

  // Declare a logical thread; then append its atomic steps in program
  // order. Steps run exactly once each, in order, under the schedule.
  class ThreadScript {
   public:
    ThreadScript& step(std::string name, std::function<void()> fn) {
      steps_.push_back({std::move(name), std::move(fn)});
      return *this;
    }
    // Repeat `body(iteration)` K times; body appends steps for iteration i.
    ThreadScript& repeat(uint32_t k,
                         const std::function<void(ThreadScript&, uint32_t)>& body) {
      for (uint32_t i = 0; i < k; ++i) body(*this, i);
      return *this;
    }

   private:
    friend class InterleavingExplorer;
    struct Step {
      std::string name;
      std::function<void()> fn;
    };
    std::string name_;
    std::vector<Step> steps_;
  };

  ThreadScript& thread(std::string name) {
    threads_.emplace_back();
    threads_.back().name_ = std::move(name);
    return threads_.back();
  }

  // Invariant checked after EVERY step: return "" when it holds, or a
  // detail string describing the violation. Checks must not mutate the
  // system under test.
  void invariant(std::string name, std::function<std::string()> check) {
    invariants_.push_back({std::move(name), std::move(check)});
  }

  // Execute one full interleaving. Stops at the first invariant violation.
  ExploreResult run();

 private:
  struct Invariant {
    std::string name;
    std::function<std::string()> check;
  };

  ExploreOptions opts_;
  // deque: thread() hands out references that must survive later thread()
  // calls appending more scripts.
  std::deque<ThreadScript> threads_;
  std::vector<Invariant> invariants_;
};

// FNV-1a, the trace hash (exposed for tests that hash their own traces).
uint64_t fnv1a(uint64_t h, const std::string& s);
inline constexpr uint64_t kFnvOffset = 1469598103934665603ull;

}  // namespace hermes::testing
