// Lightweight runtime checking used across the library.
//
// HERMES_CHECK is always on (simulation correctness beats raw speed here);
// HERMES_DCHECK compiles out in NDEBUG builds for hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace hermes::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "HERMES_CHECK failed: %s at %s:%d%s%s\n", expr, file,
               line, msg[0] ? ": " : "", msg);
  std::abort();
}

}  // namespace hermes::detail

#define HERMES_CHECK(expr)                                            \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::hermes::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
    }                                                                 \
  } while (0)

#define HERMES_CHECK_MSG(expr, msg)                                    \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::hermes::detail::check_failed(#expr, __FILE__, __LINE__, msg); \
    }                                                                  \
  } while (0)

#ifdef NDEBUG
#define HERMES_DCHECK(expr) ((void)0)
#else
#define HERMES_DCHECK(expr) HERMES_CHECK(expr)
#endif
