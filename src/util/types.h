// Fundamental strong types shared across the Hermes codebase.
//
// SimTime is a strong int64 nanosecond type: simulation code never touches
// wall-clock time, so every timestamp in the system is one of these.
#pragma once

#include <compare>
#include <cstdint>
#include <limits>
#include <string>

namespace hermes {

// Worker identifier: dense index in [0, worker_count). The in-kernel bitmap
// (64-bit) limits a single group to 64 workers; core/group.h layers groups
// on top for larger machines, mirroring the paper's two-level design.
using WorkerId = uint32_t;
inline constexpr WorkerId kInvalidWorker = std::numeric_limits<WorkerId>::max();

// Tenant / port identifiers. Our L7 LB maps each tenant to a distinct
// destination port behind the L4 NAT (paper Fig. 1), so the two are used
// interchangeably at the LB.
using TenantId = uint32_t;
using PortId = uint16_t;

// Simulated time in nanoseconds since simulation start.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(int64_t ns) : ns_(ns) {}

  static constexpr SimTime zero() { return SimTime{0}; }
  static constexpr SimTime max() {
    return SimTime{std::numeric_limits<int64_t>::max()};
  }
  static constexpr SimTime nanos(int64_t v) { return SimTime{v}; }
  static constexpr SimTime micros(int64_t v) { return SimTime{v * 1'000}; }
  static constexpr SimTime millis(int64_t v) { return SimTime{v * 1'000'000}; }
  static constexpr SimTime seconds(int64_t v) {
    return SimTime{v * 1'000'000'000};
  }
  static constexpr SimTime from_seconds_f(double v) {
    return SimTime{static_cast<int64_t>(v * 1e9)};
  }

  constexpr int64_t ns() const { return ns_; }
  constexpr double us_f() const { return static_cast<double>(ns_) / 1e3; }
  constexpr double ms_f() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double s_f() const { return static_cast<double>(ns_) / 1e9; }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime operator+(SimTime o) const { return SimTime{ns_ + o.ns_}; }
  constexpr SimTime operator-(SimTime o) const { return SimTime{ns_ - o.ns_}; }
  constexpr SimTime& operator+=(SimTime o) {
    ns_ += o.ns_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime o) {
    ns_ -= o.ns_;
    return *this;
  }
  constexpr SimTime operator*(int64_t k) const { return SimTime{ns_ * k}; }
  constexpr SimTime operator/(int64_t k) const { return SimTime{ns_ / k}; }

 private:
  int64_t ns_ = 0;
};

inline std::string to_string(SimTime t) {
  return std::to_string(t.ms_f()) + "ms";
}

}  // namespace hermes
