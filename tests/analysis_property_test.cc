// Property tests for the abstract domains behind the verifier: for random
// abstractions (constants, intervals, tnum masks, signed ranges) and
// random members of their concretizations, every ALU transfer function,
// branch refinement, join/widen, and cast must keep the concrete result
// inside the abstract one. The concrete semantics here mirror bpf/vm.cc
// exactly (shift masking, div-by-zero-is-zero, mod-by-zero-is-identity,
// 32-bit truncation), so a failure means the verifier could accept a
// program whose runtime behavior escapes its proof.
#include <gtest/gtest.h>

#include <vector>

#include "bpf/analysis/value_range.h"
#include "simcore/rng.h"

namespace hermes::bpf::analysis {
namespace {

using sim::Rng;

// ---- concrete semantics (mirror of vm.cc ALU execution) -------------

uint64_t concrete_alu(Op op, uint64_t a, uint64_t b) {
  const auto a32 = static_cast<uint32_t>(a);
  const auto b32 = static_cast<uint32_t>(b);
  switch (op) {
    case Op::AddReg: return a + b;
    case Op::SubReg: return a - b;
    case Op::MulReg: return a * b;
    case Op::DivReg: return b ? a / b : 0;
    case Op::ModReg: return b ? a % b : a;
    case Op::AndReg: return a & b;
    case Op::OrReg: return a | b;
    case Op::XorReg: return a ^ b;
    case Op::LshReg: return a << (b & 63);
    case Op::RshReg: return a >> (b & 63);
    case Op::ArshReg:
      return static_cast<uint64_t>(static_cast<int64_t>(a) >> (b & 63));
    case Op::Neg: return 0 - a;
    case Op::Add32Reg: return static_cast<uint32_t>(a + b);
    case Op::Sub32Reg: return static_cast<uint32_t>(a - b);
    case Op::Mul32Reg: return static_cast<uint32_t>(a * b);
    case Op::Div32Reg: return b32 ? a32 / b32 : 0;
    case Op::Mod32Reg: return b32 ? a32 % b32 : a32;
    case Op::And32Reg: return static_cast<uint32_t>(a & b);
    case Op::Or32Reg: return static_cast<uint32_t>(a | b);
    case Op::Xor32Reg: return static_cast<uint32_t>(a ^ b);
    case Op::Lsh32Reg: return static_cast<uint32_t>(a32 << (b & 31));
    case Op::Rsh32Reg: return a32 >> (b & 31);
    case Op::Arsh32Reg:
      return static_cast<uint32_t>(static_cast<int32_t>(a32) >> (b & 31));
    case Op::Neg32: return static_cast<uint32_t>(0 - a32);
    default: ADD_FAILURE() << "op not in test set"; return 0;
  }
}

bool concrete_jump(Op op, uint64_t a, uint64_t b) {
  const auto sa = static_cast<int64_t>(a);
  const auto sb = static_cast<int64_t>(b);
  switch (op) {
    case Op::JeqReg: return a == b;
    case Op::JneReg: return a != b;
    case Op::JgtReg: return a > b;
    case Op::JgeReg: return a >= b;
    case Op::JltReg: return a < b;
    case Op::JleReg: return a <= b;
    case Op::JsgtReg: return sa > sb;
    case Op::JsgeReg: return sa >= sb;
    case Op::JsltReg: return sa < sb;
    case Op::JsleReg: return sa <= sb;
    case Op::JsetReg: return (a & b) != 0;
    default: ADD_FAILURE() << "op not in test set"; return false;
  }
}

// ---- random abstractions --------------------------------------------

struct Abs {
  ValueRange r;
  uint64_t x;  // a concrete member of gamma(r)
};

uint64_t interesting_u64(Rng& rng) {
  switch (rng.next_below(6)) {
    case 0: return rng.next_below(16);
    case 1: return ~0ull - rng.next_below(16);
    case 2: return (uint64_t{1} << rng.next_below(64)) - rng.next_below(2);
    case 3: return static_cast<uint64_t>(
        -static_cast<int64_t>(rng.next_below(1 << 20)));
    case 4: return rng.next_u64() & 0xffffffffull;
    default: return rng.next_u64();
  }
}

Abs random_abs(Rng& rng) {
  Abs out;
  switch (rng.next_below(4)) {
    case 0: {  // constant
      out.x = interesting_u64(rng);
      out.r = ValueRange::konst(out.x);
      return out;
    }
    case 1: {  // unsigned interval
      uint64_t lo = interesting_u64(rng);
      uint64_t hi = interesting_u64(rng);
      if (lo > hi) std::swap(lo, hi);
      out.r = ValueRange::bounded(lo, hi);
      const uint64_t width = hi - lo;
      out.x = width == ~0ull ? rng.next_u64()
                             : lo + rng.next_below(width + 1);
      return out;
    }
    case 2: {  // tnum: random known bits
      const uint64_t mask = rng.next_u64() & rng.next_u64();
      const uint64_t value = interesting_u64(rng) & ~mask;
      ValueRange r = ValueRange::unknown();
      r.tn = Tnum{value, mask};
      EXPECT_TRUE(r.sync());
      out.r = r;
      out.x = value | (rng.next_u64() & mask);
      return out;
    }
    default: {  // signed interval
      auto lo = static_cast<int64_t>(interesting_u64(rng));
      auto hi = static_cast<int64_t>(interesting_u64(rng));
      if (lo > hi) std::swap(lo, hi);
      ValueRange r = ValueRange::unknown();
      r.smin = lo;
      r.smax = hi;
      EXPECT_TRUE(r.sync());
      out.r = r;
      const auto width = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo);
      out.x = static_cast<uint64_t>(lo) +
              (width == ~0ull ? rng.next_u64() : rng.next_below(width + 1));
      return out;
    }
  }
}

const Op kAluOps[] = {
    Op::AddReg,  Op::SubReg,  Op::MulReg,  Op::DivReg,   Op::ModReg,
    Op::AndReg,  Op::OrReg,   Op::XorReg,  Op::LshReg,   Op::RshReg,
    Op::ArshReg, Op::Neg,     Op::Add32Reg, Op::Sub32Reg, Op::Mul32Reg,
    Op::Div32Reg, Op::Mod32Reg, Op::And32Reg, Op::Or32Reg, Op::Xor32Reg,
    Op::Lsh32Reg, Op::Rsh32Reg, Op::Arsh32Reg, Op::Neg32,
};

const Op kJumpOps[] = {
    Op::JeqReg,  Op::JneReg,  Op::JgtReg,  Op::JgeReg,  Op::JltReg,
    Op::JleReg,  Op::JsgtReg, Op::JsgeReg, Op::JsltReg, Op::JsleReg,
    Op::JsetReg,
};

class AnalysisPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AnalysisPropertyTest, SamplesAreInTheirAbstraction) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const Abs a = random_abs(rng);
    ASSERT_TRUE(a.r.contains(a.x)) << to_string(a.r) << " vs " << a.x;
  }
}

TEST_P(AnalysisPropertyTest, AluTransferFunctionsAreSound) {
  Rng rng(GetParam());
  for (int i = 0; i < 4000; ++i) {
    const Op op = kAluOps[rng.next_below(std::size(kAluOps))];
    const Abs a = random_abs(rng);
    const Abs b = random_abs(rng);
    const ValueRange out = ValueRange::alu(op, a.r, b.r);
    const uint64_t concrete = concrete_alu(op, a.x, b.x);
    ASSERT_TRUE(out.contains(concrete))
        << disassemble({op, 1, 2, 0, 0}) << "\n  a = " << to_string(a.r)
        << " (x=" << a.x << ")\n  b = " << to_string(b.r) << " (y=" << b.x
        << ")\n  out = " << to_string(out) << "\n  concrete = " << concrete;
  }
}

TEST_P(AnalysisPropertyTest, BranchRefinementKeepsTheTakenEdgeFeasible) {
  Rng rng(GetParam());
  for (int i = 0; i < 4000; ++i) {
    const Op op = kJumpOps[rng.next_below(std::size(kJumpOps))];
    const Abs a = random_abs(rng);
    const Abs b = random_abs(rng);
    const bool taken = concrete_jump(op, a.x, b.x);
    ValueRange d = a.r;
    ValueRange s = b.r;
    // The edge the concrete execution takes must stay feasible and must
    // still contain the concrete operand values after refinement.
    ASSERT_TRUE(ValueRange::refine_branch(op, taken, d, s))
        << disassemble({op, 1, 2, 0, 0}) << " taken=" << taken
        << "\n  a = " << to_string(a.r) << " (x=" << a.x << ")\n  b = "
        << to_string(b.r) << " (y=" << b.x << ")";
    ASSERT_TRUE(d.contains(a.x))
        << disassemble({op, 1, 2, 0, 0}) << " taken=" << taken
        << "\n  refined d = " << to_string(d) << " lost x=" << a.x;
    ASSERT_TRUE(s.contains(b.x))
        << disassemble({op, 1, 2, 0, 0}) << " taken=" << taken
        << "\n  refined s = " << to_string(s) << " lost y=" << b.x;
  }
}

TEST_P(AnalysisPropertyTest, JoinWidenSubsumeAndCastAreSound) {
  Rng rng(GetParam());
  for (int i = 0; i < 4000; ++i) {
    const Abs a = random_abs(rng);
    const Abs b = random_abs(rng);
    const ValueRange j = ValueRange::join(a.r, b.r);
    ASSERT_TRUE(j.contains(a.x) && j.contains(b.x))
        << "join " << to_string(j) << " of " << to_string(a.r) << " and "
        << to_string(b.r);
    ASSERT_TRUE(ValueRange::subsumes(a.r, j) && ValueRange::subsumes(b.r, j))
        << "join not an upper bound";
    const ValueRange w = ValueRange::widen(a.r, b.r);
    ASSERT_TRUE(w.contains(a.x) && w.contains(b.x))
        << "widen " << to_string(w);
    ASSERT_TRUE(ValueRange::subsumes(j, w)) << "widen below join";
    const ValueRange c = a.r.cast32();
    ASSERT_TRUE(c.contains(static_cast<uint32_t>(a.x)))
        << "cast32 " << to_string(c) << " lost " << a.x;
  }
}

TEST_P(AnalysisPropertyTest, TnumIntersectIsExactOnMembership) {
  Rng rng(GetParam());
  for (int i = 0; i < 4000; ++i) {
    const Abs a = random_abs(rng);
    const Abs b = random_abs(rng);
    Tnum out;
    if (a.r.tn.contains(b.x) && Tnum::intersect(a.r.tn, b.r.tn, &out)) {
      ASSERT_TRUE(out.contains(b.x));
    }
    // A shared member forces a non-empty intersection.
    if (a.r.tn.contains(a.x) && b.r.tn.contains(a.x)) {
      ASSERT_TRUE(Tnum::intersect(a.r.tn, b.r.tn, &out));
      ASSERT_TRUE(out.contains(a.x));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnalysisPropertyTest,
                         ::testing::Range<uint64_t>(0, 8));

}  // namespace
}  // namespace hermes::bpf::analysis
