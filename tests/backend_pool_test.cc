// Backend round-robin start-offset fix and shared connection pool (§7).
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/backend_pool.h"

namespace hermes::core {
namespace {

// Reproduce the deployment incident: after a synchronized list update,
// non-randomized workers all start at backend 0, so with few requests per
// worker the first backends get a multiple of the others' traffic.
TEST(RoundRobinTest, SynchronizedRestartOverloadsFirstBackends) {
  constexpr uint32_t kWorkers = 16;
  RoundRobinBackends rr(kWorkers, /*randomize_start=*/false);
  rr.update_backends({0, 1, 2, 3, 4, 5, 6, 7}, /*seed=*/1);

  std::map<BackendId, int> traffic;
  // Each worker forwards only 2 requests after the update (Hermes spreads
  // load, so per-worker request counts are small).
  for (WorkerId w = 0; w < kWorkers; ++w) {
    traffic[rr.pick(w)]++;
    traffic[rr.pick(w)]++;
  }
  EXPECT_EQ(traffic[0], 16);  // every worker hit backend 0 first
  EXPECT_EQ(traffic[1], 16);
  EXPECT_EQ(traffic.count(2), 0u);  // backends 2..7 got nothing
}

TEST(RoundRobinTest, RandomizedStartSpreadsAfterUpdate) {
  constexpr uint32_t kWorkers = 16;
  RoundRobinBackends rr(kWorkers, /*randomize_start=*/true);
  rr.update_backends({0, 1, 2, 3, 4, 5, 6, 7}, /*seed=*/1);

  std::map<BackendId, int> traffic;
  for (WorkerId w = 0; w < kWorkers; ++w) {
    traffic[rr.pick(w)]++;
    traffic[rr.pick(w)]++;
  }
  // No backend should receive more than half of all requests.
  for (const auto& [b, n] : traffic) {
    EXPECT_LE(n, 16) << "backend " << b;
  }
  EXPECT_GE(traffic.size(), 4u);  // load reaches a spread of backends
}

TEST(RoundRobinTest, PerWorkerCursorIsRoundRobin) {
  RoundRobinBackends rr(1, false);
  rr.update_backends({10, 20, 30}, 0);
  EXPECT_EQ(rr.pick(0), 10u);
  EXPECT_EQ(rr.pick(0), 20u);
  EXPECT_EQ(rr.pick(0), 30u);
  EXPECT_EQ(rr.pick(0), 10u);  // wraps
}

TEST(RoundRobinTest, UpdateResetsCursors) {
  RoundRobinBackends rr(1, false);
  rr.update_backends({1, 2}, 0);
  rr.pick(0);
  rr.update_backends({7, 8, 9}, 0);
  EXPECT_EQ(rr.pick(0), 7u);
  EXPECT_EQ(rr.num_backends(), 3u);
}

// ---- connection pool -----------------------------------------------------

TEST(PoolTest, PerWorkerPoolCannotReuseAcrossWorkers) {
  BackendConnectionPool pool(4, /*shared=*/false);
  // Worker 0 finishes a request to backend 5: idle conn parked in w0's pool.
  pool.release(0, 5);
  EXPECT_FALSE(pool.acquire(1, 5));  // other worker: miss, new handshake
  EXPECT_TRUE(pool.acquire(0, 5));   // same worker: hit
}

TEST(PoolTest, SharedPoolReusesAcrossWorkers) {
  BackendConnectionPool pool(4, /*shared=*/true);
  pool.release(0, 5);
  EXPECT_TRUE(pool.acquire(3, 5));  // any worker reuses
  EXPECT_FALSE(pool.acquire(2, 5));  // now consumed
}

TEST(PoolTest, HitRateAccounting) {
  BackendConnectionPool pool(2, true);
  EXPECT_FALSE(pool.acquire(0, 1));  // miss
  pool.release(0, 1);
  EXPECT_TRUE(pool.acquire(1, 1));  // hit
  EXPECT_DOUBLE_EQ(pool.stats().hit_rate(), 0.5);
}

// The §7 effect quantified: spread traffic over all workers and compare
// pool architectures. Shared pools keep reuse high under Hermes-style
// even distribution; per-worker pools fragment.
TEST(PoolTest, HermesSpreadFragmentsPerWorkerPools) {
  constexpr uint32_t kWorkers = 8;
  constexpr int kRequests = 4000;
  constexpr uint32_t kBackends = 4;

  auto run = [&](bool shared) {
    BackendConnectionPool pool(kWorkers, shared);
    uint64_t x = 12345;
    for (int i = 0; i < kRequests; ++i) {
      x = x * 6364136223846793005ull + 1442695040888963407ull;
      // Hermes-style: requests land on any worker uniformly.
      const WorkerId w = static_cast<WorkerId>((x >> 33) % kWorkers);
      const BackendId b = static_cast<BackendId>((x >> 17) % kBackends);
      pool.acquire(w, b);
      pool.release(w, b);
    }
    return pool.stats().hit_rate();
  };

  const double shared_rate = run(true);
  const double per_worker_rate = run(false);
  EXPECT_GT(shared_rate, 0.99);  // everything after warmup is a hit
  EXPECT_GT(shared_rate, per_worker_rate);
}

// ---- time-aware pool (LIFO-warm reuse, idle expiry, eviction bound) ------

TEST(PoolTest, LifoReturnsWarmestConnectionFirst) {
  BackendConnectionPool::Config cfg;
  cfg.shared = true;
  BackendConnectionPool pool(cfg);
  pool.release(0, 1, /*conn_id=*/101, SimTime::millis(1));
  pool.release(0, 1, /*conn_id=*/102, SimTime::millis(2));
  pool.release(0, 1, /*conn_id=*/103, SimTime::millis(3));

  // Warmest (most recently idled) first: best cwnd / TLS session state.
  EXPECT_EQ(pool.acquire(0, 1, SimTime::millis(4))->id, 103u);
  EXPECT_EQ(pool.acquire(0, 1, SimTime::millis(4))->id, 102u);
  EXPECT_EQ(pool.acquire(0, 1, SimTime::millis(4))->id, 101u);
  EXPECT_FALSE(pool.acquire(0, 1, SimTime::millis(4)).has_value());
}

TEST(PoolTest, IdleConnectionsExpireFromColdEnd) {
  BackendConnectionPool::Config cfg;
  cfg.idle_expiry = SimTime::millis(10);
  BackendConnectionPool pool(cfg);
  pool.release(0, 1, 201, SimTime::millis(0));   // cold
  pool.release(0, 1, 202, SimTime::millis(8));   // warm

  // At t=12ms only the t=0 connection has idled past 10ms.
  const auto got = pool.acquire(0, 1, SimTime::millis(12));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->id, 202u);
  EXPECT_EQ(pool.stats().expiries, 1u);
  // The expired one is gone, not acquirable.
  EXPECT_FALSE(pool.acquire(0, 1, SimTime::millis(12)).has_value());
}

TEST(PoolTest, ExpireIdleSweepsAllPartitions) {
  BackendConnectionPool::Config cfg;
  cfg.shared = false;
  cfg.num_workers = 4;
  cfg.idle_expiry = SimTime::millis(5);
  BackendConnectionPool pool(cfg);
  for (WorkerId w = 0; w < 4; ++w) pool.release(w, 7, 0, SimTime::zero());
  EXPECT_EQ(pool.idle_total(), 4u);
  pool.expire_idle(SimTime::millis(6));
  EXPECT_EQ(pool.idle_total(), 0u);
  EXPECT_EQ(pool.stats().expiries, 4u);
}

TEST(PoolTest, MaxIdleBoundEvictsColdest) {
  BackendConnectionPool::Config cfg;
  cfg.max_idle_per_backend = 2;
  BackendConnectionPool pool(cfg);
  pool.release(0, 1, 301, SimTime::millis(1));
  pool.release(0, 1, 302, SimTime::millis(2));
  pool.release(0, 1, 303, SimTime::millis(3));  // bound hit: 301 evicted
  EXPECT_EQ(pool.stats().evictions, 1u);
  EXPECT_EQ(pool.idle_total(), 2u);
  EXPECT_EQ(pool.acquire(0, 1, SimTime::millis(4))->id, 303u);
  EXPECT_EQ(pool.acquire(0, 1, SimTime::millis(4))->id, 302u);
  EXPECT_FALSE(pool.acquire(0, 1, SimTime::millis(4)).has_value());
}

TEST(PoolTest, MintedIdentitySurvivesReuseCycles) {
  BackendConnectionPool pool(BackendConnectionPool::Config{});
  // A freshly established connection (id 0) gets a minted identity...
  pool.release(0, 1, 0, SimTime::zero());
  const auto first = pool.acquire(0, 1, SimTime::millis(1));
  ASSERT_TRUE(first.has_value());
  EXPECT_NE(first->id, 0u);
  // ...which is preserved across release/acquire cycles.
  pool.release(0, 1, first->id, SimTime::millis(2));
  const auto again = pool.acquire(0, 1, SimTime::millis(3));
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->id, first->id);
}

TEST(PoolTest, ZeroExpiryDisablesAging) {
  BackendConnectionPool::Config cfg;
  cfg.idle_expiry = SimTime{};  // disabled
  BackendConnectionPool pool(cfg);
  pool.release(0, 1, 401, SimTime::zero());
  // Even after an hour, the connection is still reusable.
  const auto got = pool.acquire(0, 1, SimTime::seconds(3600));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->id, 401u);
  EXPECT_EQ(pool.stats().expiries, 0u);
}

}  // namespace
}  // namespace hermes::core
