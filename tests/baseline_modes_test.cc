// The additional baselines: userspace dispatcher (§2.2), io_uring-style
// FIFO wakeup (§8), pre-4.5 thundering herd, and the epoll-rr patch.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/lb.h"

namespace hermes::sim {
namespace {

LbDevice::Config config_for(netsim::DispatchMode mode, uint64_t seed = 3) {
  LbDevice::Config cfg;
  cfg.mode = mode;
  cfg.num_workers = 4;
  cfg.num_ports = 4;
  cfg.seed = seed;
  return cfg;
}

void drive_short_conns(LbDevice& lb, int n, SimTime spacing) {
  LbDevice::ConnPlan plan;
  plan.remaining = 1;
  plan.cost_us = DistSpec::constant(100);
  for (int i = 0; i < n; ++i) {
    lb.eq().schedule_at(spacing * i, [&lb, plan, i] {
      lb.open_connection(static_cast<TenantId>(i % 4), plan);
    });
  }
}

// ------------------------------------------------------- user dispatcher

TEST(UserDispatcherTest, DispatchesRoundRobinAcrossServingWorkers) {
  LbDevice lb(config_for(netsim::DispatchMode::UserDispatcher));
  drive_short_conns(lb, 300, SimTime::millis(1));
  lb.eq().run_until(SimTime::seconds(1));

  EXPECT_EQ(lb.totals().requests_completed, 300u);
  EXPECT_EQ(lb.dispatcher()->dispatched(), 300u);
  // Worker 0 hosts the dispatcher and serves nothing.
  EXPECT_EQ(lb.worker(0).accepts_done(), 0u);
  // Workers 1..3 share evenly (round-robin).
  for (WorkerId w = 1; w < 4; ++w) {
    EXPECT_EQ(lb.worker(w).accepts_done(), 100u);
  }
}

TEST(UserDispatcherTest, DispatcherSaturatesUnderHighCps) {
  // The §2.2 argument: the dispatcher core caps the connection rate.
  // 18us/conn => ~55k CPS ceiling; offer 3x that and watch the backlog.
  LbDevice::Config cfg = config_for(netsim::DispatchMode::UserDispatcher);
  cfg.num_workers = 8;  // plenty of serving capacity
  LbDevice lb(cfg);

  TrafficPattern p;
  p.cps = 150'000;
  p.requests_per_conn = DistSpec::constant(1);
  p.request_cost_us = DistSpec::constant(30);  // workers are NOT the limit
  lb.start_pattern(p, 0, cfg.num_ports, SimTime::seconds(1));
  lb.eq().run_until(SimTime::seconds(1));

  const double dispatch_rate =
      static_cast<double>(lb.dispatcher()->dispatched()) / 1.0;
  EXPECT_LT(dispatch_rate, 70'000);  // capped well below the offered 150k
  // Dispatcher core is pegged.
  EXPECT_GT(lb.dispatcher()->busy_time().s_f(), 0.9);
}

TEST(UserDispatcherTest, HermesSustainsTheSameLoadDispatcherCannot) {
  auto run = [](netsim::DispatchMode mode) {
    LbDevice::Config cfg = config_for(mode);
    cfg.num_workers = 8;
    LbDevice lb(cfg);
    TrafficPattern p;
    p.cps = 120'000;
    p.requests_per_conn = DistSpec::constant(1);
    p.request_cost_us = DistSpec::constant(30);
    lb.start_pattern(p, 0, cfg.num_ports, SimTime::seconds(1));
    lb.eq().run_until(SimTime::seconds(2));
    return lb.totals().requests_completed;
  };
  const auto hermes_done = run(netsim::DispatchMode::HermesMode);
  const auto dispatcher_done = run(netsim::DispatchMode::UserDispatcher);
  EXPECT_GT(hermes_done, dispatcher_done * 3 / 2);
}

// ------------------------------------------------------------ FIFO mode

TEST(IoUringFifoTest, ConcentratesOnOldestRegisteredWorker) {
  // FIFO wakeup prefers the FIRST registered worker (id 0) — the mirror
  // image of exclusive's LIFO — so the imbalance pathology persists,
  // which is the paper's §8 point about io_uring's default mode.
  LbDevice lb(config_for(netsim::DispatchMode::IoUringFifo));
  LbDevice::ConnPlan plan;
  plan.remaining = 100;                    // long-lived
  plan.cost_us = DistSpec::constant(50);
  plan.gap_us = DistSpec::exponential(200'000);
  for (int i = 0; i < 200; ++i) {
    lb.eq().schedule_at(SimTime::millis(2 * i), [&lb, plan, i] {
      lb.open_connection(static_cast<TenantId>(i % 4), plan);
    });
  }
  lb.eq().run_until(SimTime::seconds(1));
  std::vector<uint64_t> accepts;
  for (WorkerId w = 0; w < 4; ++w) accepts.push_back(lb.worker(w).accepts_done());
  EXPECT_EQ(*std::max_element(accepts.begin(), accepts.end()), accepts[0]);
  EXPECT_GT(static_cast<double>(accepts[0]) / 200.0, 0.8);
}

// ---------------------------------------------------------- herd and rr

TEST(WakeAllTest, ThunderingHerdWastesWakeups) {
  LbDevice lb(config_for(netsim::DispatchMode::EpollWakeAll));
  drive_short_conns(lb, 100, SimTime::millis(3));
  lb.eq().run_until(SimTime::seconds(1));
  EXPECT_EQ(lb.totals().requests_completed, 100u);
  // With 4 idle workers per event, ~3 wakeups per connection are wasted.
  EXPECT_GT(lb.netstack().stats().wasted_wakeups, 100u);
}

TEST(EpollRrTest, RotatesFairly) {
  LbDevice lb(config_for(netsim::DispatchMode::EpollRr));
  drive_short_conns(lb, 200, SimTime::millis(3));
  lb.eq().run_until(SimTime::seconds(1));
  for (WorkerId w = 0; w < 4; ++w) {
    EXPECT_NEAR(static_cast<double>(lb.worker(w).accepts_done()), 50.0, 15.0);
  }
}

// ------------------------------------------------- sync interval ablation

TEST(SyncIntervalTest, StaleBitmapKeepsFeedingWedgedWorker) {
  auto run = [](SimTime interval) {
    LbDevice::Config cfg = config_for(netsim::DispatchMode::HermesMode, 8);
    cfg.worker.min_sync_interval = interval;
    LbDevice lb(cfg);

    // Let every worker publish its once-per-interval sync first (all
    // healthy -> full bitmap), THEN wedge one worker.
    lb.eq().run_until(SimTime::millis(50));
    LbDevice::ConnPlan poison;
    poison.remaining = 1;
    poison.cost_us = DistSpec::constant(3'000'000);
    lb.open_connection(0, poison);
    lb.eq().run_until(SimTime::millis(100));

    WorkerId hung = kInvalidWorker;
    for (WorkerId w = 0; w < lb.num_workers(); ++w) {
      if (!lb.worker(w).blocked()) hung = w;
    }
    EXPECT_NE(hung, kInvalidWorker);

    LbDevice::ConnPlan quick;
    quick.remaining = 1;
    quick.cost_us = DistSpec::constant(100);
    for (int i = 0; i < 200; ++i) {
      lb.eq().schedule_at(SimTime::millis(101 + i), [&lb, quick, i] {
        lb.open_connection(static_cast<TenantId>(i % 4), quick);
      });
    }
    lb.eq().run_until(SimTime::millis(400));
    // Connections parked behind the wedge across the hung worker's sockets.
    uint64_t queued = 0;
    for (uint32_t p = 0; p < lb.config().num_ports; ++p) {
      queued += lb.netstack()
                    .worker_socket(
                        static_cast<PortId>(lb.config().first_port + p), hung)
                    ->accept_queue()
                    .size();
    }
    return queued;
  };
  // Responsive loop: wedged worker gets nothing. Frozen loop (sync slower
  // than the run): the stale all-ones bitmap keeps including it.
  EXPECT_EQ(run(SimTime::zero()), 0u);
  EXPECT_GT(run(SimTime::seconds(30)), 10u);
}

}  // namespace
}  // namespace hermes::sim
