// Property tests for the branch-free bitmap primitives against builtins.
#include <gtest/gtest.h>

#include <bit>

#include "core/bitmap.h"
#include "simcore/rng.h"

namespace hermes::core {
namespace {

TEST(BitmapTest, PopcountKnownValues) {
  EXPECT_EQ(count_nonzero_bits(0), 0u);
  EXPECT_EQ(count_nonzero_bits(1), 1u);
  EXPECT_EQ(count_nonzero_bits(0b11001), 3u);
  EXPECT_EQ(count_nonzero_bits(~0ull), 64u);
  EXPECT_EQ(count_nonzero_bits(0x8000000000000000ull), 1u);
}

TEST(BitmapTest, PopcountMatchesBuiltinExhaustive16) {
  for (uint64_t v = 0; v <= 0xffff; ++v) {
    ASSERT_EQ(count_nonzero_bits(v),
              static_cast<uint32_t>(std::popcount(v)));
  }
}

TEST(BitmapTest, PopcountMatchesBuiltinRandom64) {
  sim::Rng rng(1);
  for (int i = 0; i < 100000; ++i) {
    const uint64_t v = rng.next_u64();
    ASSERT_EQ(count_nonzero_bits(v), static_cast<uint32_t>(std::popcount(v)));
  }
}

TEST(BitmapTest, CtzMatchesBuiltin) {
  sim::Rng rng(2);
  EXPECT_EQ(count_trailing_zeros(0), 64u);
  for (int i = 0; i < 100000; ++i) {
    const uint64_t v = rng.next_u64() | 1ull << rng.next_below(64);
    ASSERT_EQ(count_trailing_zeros(v),
              static_cast<uint32_t>(std::countr_zero(v)));
  }
}

TEST(BitmapTest, FindNthKnownValues) {
  // 0b11001: set bits at 0, 3, 4.
  EXPECT_EQ(find_nth_nonzero_bit(0b11001, 1), 0u);
  EXPECT_EQ(find_nth_nonzero_bit(0b11001, 2), 3u);
  EXPECT_EQ(find_nth_nonzero_bit(0b11001, 3), 4u);
  EXPECT_EQ(find_nth_nonzero_bit(~0ull, 64), 63u);
  EXPECT_EQ(find_nth_nonzero_bit(1ull << 63, 1), 63u);
}

TEST(BitmapTest, FindNthPropertyRandom) {
  sim::Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    uint64_t v = rng.next_u64();
    if (v == 0) v = 1;
    const uint32_t n = count_nonzero_bits(v);
    const uint32_t rank = 1 + static_cast<uint32_t>(rng.next_below(n));
    const uint32_t pos = find_nth_nonzero_bit(v, rank);
    // Property 1: the bit at pos is set.
    ASSERT_TRUE((v >> pos) & 1);
    // Property 2: exactly rank set bits at positions <= pos.
    const uint64_t below = pos == 63 ? v : v & ((2ull << pos) - 1);
    ASSERT_EQ(count_nonzero_bits(below), rank);
  }
}

TEST(BitmapTest, ReciprocalScaleInRangeAndUniformish) {
  sim::Rng rng(4);
  for (uint32_t n : {1u, 2u, 3u, 7u, 32u, 64u}) {
    uint64_t counts[64] = {};
    for (int i = 0; i < 64000; ++i) {
      const uint32_t idx =
          reciprocal_scale_u32(static_cast<uint32_t>(rng.next_u64()), n);
      ASSERT_LT(idx, n);
      ++counts[idx];
    }
    for (uint32_t b = 0; b < n; ++b) {
      EXPECT_NEAR(static_cast<double>(counts[b]), 64000.0 / n,
                  64000.0 / n * 0.15);
    }
  }
}

TEST(BitmapTest, ReciprocalScaleEdges) {
  EXPECT_EQ(reciprocal_scale_u32(0, 10), 0u);
  EXPECT_EQ(reciprocal_scale_u32(0xffffffffu, 10), 9u);
  EXPECT_EQ(reciprocal_scale_u32(0xffffffffu, 1), 0u);
}

TEST(BitmapTest, SetAndTest) {
  WorkerBitmap bm = 0;
  bm = bitmap_set(bm, 0);
  bm = bitmap_set(bm, 5);
  bm = bitmap_set(bm, 63);
  EXPECT_TRUE(bitmap_test(bm, 0));
  EXPECT_TRUE(bitmap_test(bm, 5));
  EXPECT_TRUE(bitmap_test(bm, 63));
  EXPECT_FALSE(bitmap_test(bm, 1));
  EXPECT_FALSE(bitmap_test(bm, 64));   // out of range: false, not UB
  EXPECT_FALSE(bitmap_test(bm, 200));
}

// The paper's encoding example (§5.3.2): "{1, 1, 0, 0, 1} indicates that
// workers with ID 1, 2, and 5 are selected" — i.e. bitmap 11001 read
// left-to-right is worker 1 first. With 0-based ids, bits 0, 1, 4.
TEST(BitmapTest, PaperEncodingExample) {
  WorkerBitmap bm = 0;
  bm = bitmap_set(bm, 0);
  bm = bitmap_set(bm, 1);
  bm = bitmap_set(bm, 4);
  EXPECT_EQ(count_nonzero_bits(bm), 3u);
  EXPECT_EQ(find_nth_nonzero_bit(bm, 1), 0u);
  EXPECT_EQ(find_nth_nonzero_bit(bm, 2), 1u);
  EXPECT_EQ(find_nth_nonzero_bit(bm, 3), 4u);
}

}  // namespace
}  // namespace hermes::core
