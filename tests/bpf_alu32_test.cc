// ALU32 instruction family: low-32-bit operation with zero-extension,
// swept against host semantics, plus verifier typing rules.
#include <gtest/gtest.h>

#include "bpf/assembler.h"
#include "bpf/vm.h"
#include "simcore/rng.h"

namespace hermes::bpf {
namespace {

struct Alu32Case {
  Op op;
  const char* name;
  uint64_t (*eval)(uint64_t, uint64_t);
};

uint32_t lo(uint64_t v) { return static_cast<uint32_t>(v); }

class Alu32Sweep : public ::testing::TestWithParam<Alu32Case> {};

TEST_P(Alu32Sweep, MatchesHostSemantics) {
  const Alu32Case& c = GetParam();
  Vm vm;
  sim::Rng rng(4242);
  for (int i = 0; i < 200; ++i) {
    const uint64_t x = rng.next_u64();
    uint64_t y = rng.next_u64();
    if (i % 4 == 0) y &= 0x1f;
    Program p = {
        {Op::LdImm64, 1, 0, 0, static_cast<int64_t>(x)},
        {Op::LdImm64, 2, 0, 0, static_cast<int64_t>(y)},
        {Op::MovReg, 0, 1, 0, 0},
        {c.op, 0, 2, 0, 0},
        {Op::Exit},
    };
    std::string err;
    auto prog = vm.load(std::move(p), {}, &err);
    ASSERT_NE(prog, nullptr) << err;
    ReuseportCtx ctx;
    const uint64_t got = vm.run(*prog, ctx).ret;
    const uint64_t want = c.eval(x, y);
    ASSERT_EQ(got, want) << c.name << " x=" << x << " y=" << y;
    // Zero-extension property: the upper 32 bits are always clear.
    ASSERT_EQ(got >> 32, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, Alu32Sweep,
    ::testing::Values(
        Alu32Case{Op::Add32Reg, "add32",
                  [](uint64_t x, uint64_t y) -> uint64_t { return lo(x + y); }},
        Alu32Case{Op::Sub32Reg, "sub32",
                  [](uint64_t x, uint64_t y) -> uint64_t { return lo(x - y); }},
        Alu32Case{Op::Mul32Reg, "mul32",
                  [](uint64_t x, uint64_t y) -> uint64_t { return lo(x * y); }},
        Alu32Case{Op::Div32Reg, "div32",
                  [](uint64_t x, uint64_t y) -> uint64_t {
                    return lo(y) ? lo(x) / lo(y) : 0;
                  }},
        Alu32Case{Op::Mod32Reg, "mod32",
                  [](uint64_t x, uint64_t y) -> uint64_t {
                    return lo(y) ? lo(x) % lo(y) : lo(x);
                  }},
        Alu32Case{Op::And32Reg, "and32",
                  [](uint64_t x, uint64_t y) -> uint64_t { return lo(x & y); }},
        Alu32Case{Op::Or32Reg, "or32",
                  [](uint64_t x, uint64_t y) -> uint64_t { return lo(x | y); }},
        Alu32Case{Op::Xor32Reg, "xor32",
                  [](uint64_t x, uint64_t y) -> uint64_t { return lo(x ^ y); }},
        Alu32Case{Op::Lsh32Reg, "lsh32",
                  [](uint64_t x, uint64_t y) -> uint64_t {
                    return lo(lo(x) << (y & 31));
                  }},
        Alu32Case{Op::Rsh32Reg, "rsh32",
                  [](uint64_t x, uint64_t y) -> uint64_t {
                    return lo(x) >> (y & 31);
                  }},
        Alu32Case{Op::Arsh32Reg, "arsh32",
                  [](uint64_t x, uint64_t y) -> uint64_t {
                    return static_cast<uint32_t>(
                        static_cast<int32_t>(lo(x)) >> (y & 31));
                  }}),
    [](const ::testing::TestParamInfo<Alu32Case>& info) {
      return info.param.name;
    });

TEST(Alu32Test, Neg32ZeroExtends) {
  Vm vm;
  Assembler a;
  a.mov(r0, 5);
  a.neg32(r0);
  a.exit();
  std::string err;
  auto prog = vm.load(a.finish(), {}, &err);
  ASSERT_NE(prog, nullptr) << err;
  ReuseportCtx ctx;
  EXPECT_EQ(vm.run(*prog, ctx).ret, 0xfffffffbull);  // not sign-extended
}

TEST(Alu32Test, ImmediateFormsWork) {
  Vm vm;
  Assembler a;
  a.ld_imm64(r0, 0xffffffff00000001ull);
  a.add32(r0, 10);       // -> 11 (upper bits dropped)
  a.mul32(r0, 3);        // -> 33
  a.xor32(r0, 0x21);     // -> 0x00
  a.or32(r0, 0x40);      // -> 0x40
  a.exit();
  std::string err;
  auto prog = vm.load(a.finish(), {}, &err);
  ASSERT_NE(prog, nullptr) << err;
  ReuseportCtx ctx;
  EXPECT_EQ(vm.run(*prog, ctx).ret, 0x40u);
}

TEST(Alu32VerifierTest, Div32ByZeroImmediateRejected) {
  Assembler a;
  a.mov(r0, 7);
  a.div32(r0, 0);
  a.exit();
  std::vector<Map*> no_maps;
  EXPECT_FALSE(verify(a.finish(), no_maps));
}

TEST(Alu32VerifierTest, PointerOperandsRejected) {
  // add32 on the frame pointer copy would truncate a pointer.
  Assembler a;
  a.mov(r2, r10);
  a.add32(r2, 4);
  a.mov(r0, 0);
  a.exit();
  std::vector<Map*> no_maps;
  const auto res = verify(a.finish(), no_maps);
  EXPECT_FALSE(res);
}

TEST(Alu32Test, ReciprocalScale32InBytecode) {
  // reciprocal_scale written with the 32-bit family: (u64)hash * n >> 32,
  // then confirm the result matches the kernel formula for sample inputs.
  Vm vm;
  for (const auto& [hash, n, want] :
       {std::tuple<uint32_t, uint32_t, uint32_t>{0u, 10u, 0u},
        std::tuple<uint32_t, uint32_t, uint32_t>{0xffffffffu, 10u, 9u},
        std::tuple<uint32_t, uint32_t, uint32_t>{0x80000000u, 8u, 4u}}) {
    Assembler a;
    a.mov32(r1, static_cast<int32_t>(hash));
    a.mov32(r2, static_cast<int32_t>(n));
    a.mov(r0, r1);
    a.mul(r0, r2);  // 64-bit product of two zero-extended 32-bit values
    a.rsh(r0, 32);
    a.exit();
    std::string err;
    auto prog = vm.load(a.finish(), {}, &err);
    ASSERT_NE(prog, nullptr) << err;
    ReuseportCtx ctx;
    EXPECT_EQ(vm.run(*prog, ctx).ret, want) << hash << " " << n;
  }
}

}  // namespace
}  // namespace hermes::bpf
