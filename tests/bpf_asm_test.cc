// Assembler: label fixup (forward and backward edges), disassembly.
#include <gtest/gtest.h>

#include "bpf/assembler.h"

namespace hermes::bpf {
namespace {

TEST(AssemblerTest, EmitsExpectedOpcodes) {
  Assembler a;
  a.mov(r0, 7);
  a.add(r0, r1);
  a.exit();
  Program p = a.finish();
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p[0].op, Op::MovImm);
  EXPECT_EQ(p[0].dst, 0);
  EXPECT_EQ(p[0].imm, 7);
  EXPECT_EQ(p[1].op, Op::AddReg);
  EXPECT_EQ(p[1].src, 1);
  EXPECT_EQ(p[2].op, Op::Exit);
}

TEST(AssemblerTest, ForwardLabelIsPatched) {
  Assembler a;
  a.jeq(r1, 0, "skip");   // idx 0
  a.mov(r0, 1);           // idx 1
  a.label("skip");
  a.mov(r0, 2);           // idx 2
  a.exit();
  Program p = a.finish();
  // Jump from 0 to 2: off = 2 - 0 - 1 = 1.
  EXPECT_EQ(p[0].off, 1);
}

TEST(AssemblerTest, MultipleJumpsToOneLabel) {
  Assembler a;
  a.jeq(r1, 0, "end");
  a.jne(r1, 5, "end");
  a.mov(r0, 1);
  a.label("end");
  a.exit();
  Program p = a.finish();
  EXPECT_EQ(p[0].off, 2);
  EXPECT_EQ(p[1].off, 1);
}

TEST(AssemblerTest, JumpToImmediateNextInsnHasZeroOffset) {
  Assembler a;
  a.ja("next");
  a.label("next");
  a.exit();
  Program p = a.finish();
  EXPECT_EQ(p[0].off, 0);
}

TEST(AssemblerDeathTest, UnresolvedLabelAborts) {
  Assembler a;
  a.ja("nowhere");
  a.exit();
  EXPECT_DEATH(a.finish(), "unresolved label");
}

TEST(AssemblerTest, BackwardLabelResolvesImmediately) {
  Assembler a;
  a.mov(r7, 0);           // idx 0
  a.label("top");
  a.add(r7, 1);           // idx 1
  a.jlt(r7, 8, "top");    // idx 2, back to 1: off = 1 - 2 - 1 = -2
  a.exit();
  Program p = a.finish();
  EXPECT_EQ(p[2].off, -2);
}

TEST(AssemblerTest, LabelUsedForwardAndBackward) {
  Assembler a;
  a.jeq(r1, 0, "mid");    // idx 0, forward to 2
  a.mov(r0, 1);           // idx 1
  a.label("mid");
  a.mov(r0, 2);           // idx 2
  a.jne(r0, 0, "mid");    // idx 3, backward to 2: off = 2 - 3 - 1 = -2
  a.exit();
  Program p = a.finish();
  EXPECT_EQ(p[0].off, 1);
  EXPECT_EQ(p[3].off, -2);
}

TEST(AssemblerDeathTest, DuplicateLabelBindAborts) {
  Assembler a;
  a.label("top");
  a.mov(r0, 0);
  EXPECT_DEATH(a.label("top"), "bound twice");
}

TEST(DisassemblerTest, ReadableOutput) {
  Assembler a;
  a.mov(r3, 42);
  a.ldx_w(r2, r1, 16);
  a.stx_dw(r10, -8, r7);
  a.call(HelperId::MapLookupElem);
  a.exit();
  Program p = a.finish();
  EXPECT_EQ(disassemble(p[0]), "movi r3, 42");
  EXPECT_EQ(disassemble(p[1]), "ldxw r2, [r1+16]");
  EXPECT_EQ(disassemble(p[2]), "stxdw [r10-8], r7");
  EXPECT_EQ(disassemble(p[3]), "call 1");
  EXPECT_EQ(disassemble(p[4]), "exit");
  // Full-program disassembly has one numbered line per insn.
  const std::string all = disassemble(p);
  EXPECT_NE(all.find("0: movi r3, 42"), std::string::npos);
  EXPECT_NE(all.find("4: exit"), std::string::npos);
}

TEST(DisassemblerTest, JumpShowsTarget) {
  Assembler a;
  a.jgt(r2, 10, "out");
  a.mov(r0, 0);
  a.label("out");
  a.exit();
  Program p = a.finish();
  EXPECT_EQ(disassemble(p[0]), "jgti r2, 10 -> +1");
}

}  // namespace
}  // namespace hermes::bpf
