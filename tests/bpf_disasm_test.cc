// Opcode-table integrity: every opcode has a printable mnemonic and a
// disassembly that never crashes — guards the name table against drift
// when the ISA grows (as it did with the ALU32 family).
#include <gtest/gtest.h>

#include <set>

#include "bpf/insn.h"

namespace hermes::bpf {
namespace {

TEST(DisasmCoverageTest, EveryOpcodeHasAUniqueName) {
  std::set<std::string> names;
  for (int op = 0; op <= static_cast<int>(Op::Exit); ++op) {
    const std::string name = to_string(static_cast<Op>(op));
    EXPECT_FALSE(name.empty());
    EXPECT_TRUE(names.insert(name).second)
        << "duplicate mnemonic '" << name << "' at opcode " << op;
  }
}

TEST(DisasmCoverageTest, EveryOpcodeDisassembles) {
  for (int op = 0; op <= static_cast<int>(Op::Exit); ++op) {
    Insn insn;
    insn.op = static_cast<Op>(op);
    insn.dst = 1;
    insn.src = 2;
    insn.off = -8;
    insn.imm = 42;
    const std::string text = disassemble(insn);
    EXPECT_FALSE(text.empty());
    // Every line leads with the mnemonic.
    EXPECT_EQ(text.rfind(to_string(insn.op), 0), 0u) << text;
  }
}

TEST(DisasmCoverageTest, Alu32FamilyNamedDistinctlyFrom64) {
  EXPECT_EQ(to_string(Op::AddReg), "add");
  EXPECT_EQ(to_string(Op::Add32Reg), "add32");
  EXPECT_EQ(to_string(Op::Arsh32Imm), "arsh32i");
  EXPECT_EQ(to_string(Op::Neg32), "neg32");
  EXPECT_EQ(to_string(Op::Mov32Imm), "mov32i");
}

TEST(DisasmCoverageTest, ProgramListingIsLineNumbered) {
  Program p = {{Op::MovImm, 0, 0, 0, 1}, {Op::Exit}};
  const std::string text = disassemble(p);
  EXPECT_NE(text.find("0: movi r0, 1"), std::string::npos);
  EXPECT_NE(text.find("1: exit"), std::string::npos);
}

}  // namespace
}  // namespace hermes::bpf
