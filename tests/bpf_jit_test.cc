// Tier-3 JIT unit tests (src/bpf/jit/): branch-fixup edge cases (backward
// edges, jumps landing on fused-superinstruction boundaries, rel32 targets
// far beyond jcc-rel8 range), the W^X code-buffer lifecycle across
// load/attach/detach/reload, codegen-refusal fallback to tier 2, and the
// negative guarantee that verifier-rejected programs never reach codegen.
//
// Every behavioural test runs differentially: tier 3 must be bit-identical
// to tiers 0-2 and to the independent reference interpreter. On hosts where
// the JIT is unavailable (non-x86-64, HERMES_BPF_JIT=off) a tier-3 request
// compiles down to tier 2; the tests then assert the fallback contract
// instead of skipping.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bpf/assembler.h"
#include "bpf/insn.h"
#include "bpf/jit/jit.h"
#include "bpf/maps.h"
#include "bpf/plan.h"
#include "bpf/ref_interpreter.h"
#include "bpf/vm.h"
#include "netsim/four_tuple.h"
#include "netsim/listening_socket.h"
#include "netsim/reuseport.h"

namespace hermes::bpf {
namespace {

// Tier a Jit request actually lands on for this host.
ExecTier expected_tier(ExecTier requested) {
  if (requested == ExecTier::Jit && !jit::available()) return ExecTier::Elide;
  return requested;
}

struct Loaded {
  Vm vm;
  std::unique_ptr<LoadedProgram> prog;
};

Loaded load_at(const Program& p, ExecTier tier, std::vector<Map*> maps = {}) {
  Loaded l;
  l.vm.set_tier(tier);
  std::string err;
  l.prog = l.vm.load(p, std::move(maps), &err);
  EXPECT_NE(l.prog, nullptr) << err;
  return l;
}

// Run `p` at every tier and against the reference interpreter; all five
// executions must agree on r0 and the executed-instruction count.
void expect_all_tiers_agree(const Program& p, uint32_t ctx_hash = 0) {
  ReuseportCtx ref_ctx;
  ref_ctx.hash = ctx_hash;
  const RefResult ref = ref_run(p, {}, ref_ctx);
  ASSERT_FALSE(ref.trapped) << ref.trap;

  for (int t = 0; t <= static_cast<int>(ExecTier::Jit); ++t) {
    const auto tier = static_cast<ExecTier>(t);
    auto l = load_at(p, tier);
    ASSERT_NE(l.prog, nullptr);
    EXPECT_EQ(l.prog->tier(), expected_tier(tier));
    ReuseportCtx ctx;
    ctx.hash = ctx_hash;
    const auto run = l.vm.run(*l.prog, ctx);
    EXPECT_EQ(run.ret, ref.ret) << "tier " << t;
    EXPECT_EQ(run.insns_executed, ref.insns_executed) << "tier " << t;
    EXPECT_EQ(run.tier, expected_tier(tier)) << "tier " << t;
  }
}

// The 19-insn branch-free popcount sequence core/dispatch_prog.cc emits
// (d = popcount(s), clobbering s and c); the plan compiler fuses it into
// one superinstruction. `mid` optionally binds a label on the second
// instruction, which must block fusion.
void emit_popcount(Assembler& a, R d, R s, R c, const char* mid = nullptr) {
  a.mov(d, s);
  if (mid != nullptr) a.label(mid);
  a.rsh(d, 1);
  a.ld_imm64(c, 0x5555555555555555ull);
  a.and_(d, c);
  a.sub(s, d);
  a.mov(d, s);
  a.rsh(d, 2);
  a.ld_imm64(c, 0x3333333333333333ull);
  a.and_(d, c);
  a.and_(s, c);
  a.add(d, s);
  a.mov(s, d);
  a.rsh(s, 4);
  a.add(d, s);
  a.ld_imm64(c, 0x0f0f0f0f0f0f0f0full);
  a.and_(d, c);
  a.ld_imm64(c, 0x0101010101010101ull);
  a.mul(d, c);
  a.rsh(d, 56);
}

// A minimal reuseport program: select the socket in slot `slot` of the
// sock-array at map index 0, return kRetUseSelection on success.
Program select_slot_program(int32_t slot) {
  Assembler a;
  a.mov(r6, r1);            // save ctx
  a.st_w(r10, -4, slot);    // key on the stack
  a.mov(r1, r6);
  a.ld_map_fd(r2, 0);
  a.mov(r3, r10);
  a.add(r3, -4);
  a.mov(r4, 0);
  a.call(HelperId::SkSelectReuseport);
  a.jne(r0, 0, "fallback");
  a.mov(r0, static_cast<int64_t>(kRetUseSelection));
  a.exit();
  a.label("fallback");
  a.mov(r0, static_cast<int64_t>(kRetFallback));
  a.exit();
  return a.finish();
}

// ---- branch fixups ----------------------------------------------------

TEST(BpfJit, BackwardBranchLoopMatchesAllTiers) {
  // Counted loop (the shape the verifier's per-iteration analysis accepts):
  // the jlt back-edge is a backward branch in the emitted code, so the JIT
  // must resolve its rel32 immediately and re-check the instruction budget
  // on every taken iteration.
  Assembler a;
  a.mov(r0, 0);
  a.mov(r3, 7);
  a.mov(r5, 0);
  a.label("top");
  a.add(r0, r3);
  a.add(r0, r5);
  a.add(r5, 1);
  a.jlt(r5, 8, "top");
  a.exit();
  expect_all_tiers_agree(a.finish());
}

TEST(BpfJit, JumpLandingOnFusedBoundaryKeepsFusion) {
  // A branch targeting the popcount sequence's FIRST instruction: a fused
  // segment may start at a jump target, so fusion survives and the JIT's
  // fixup must land on the superinstruction's code offset.
  Assembler a;
  a.ld_imm64(r1, 0x00ff00ff00ff00ffull);
  a.mov(r3, 0);
  a.jeq(r3, 0, "pc");        // always taken, lands on the segment head
  a.mov(r1, 0);              // skipped
  a.label("pc");
  emit_popcount(a, r0, r1, r2);
  a.exit();
  const Program p = a.finish();

  auto l = load_at(p, ExecTier::Jit);
  ASSERT_NE(l.prog->plan(), nullptr);
  EXPECT_EQ(l.prog->plan()->stats().fused_popcount, 1u);
  expect_all_tiers_agree(p);
}

TEST(BpfJit, JumpIntoFusedSegmentSuppressesFusionAndAgrees) {
  // A never-taken branch targeting the sequence's SECOND instruction:
  // fusion must be suppressed (the target would vanish inside the
  // superinstruction) and the JIT compiles the 1:1 micro-ops instead.
  Assembler a;
  a.mov(r0, 0);
  a.mov(r1, 0xffll);
  a.jeq(r1, 0, "mid");       // never taken; lands mid-sequence
  emit_popcount(a, r0, r1, r2, "mid");
  a.exit();
  const Program p = a.finish();

  auto l = load_at(p, ExecTier::Jit);
  ASSERT_NE(l.prog->plan(), nullptr);
  EXPECT_EQ(l.prog->plan()->stats().fused_popcount, 0u);
  expect_all_tiers_agree(p);
}

TEST(BpfJit, LongForwardBranchNeedsRel32) {
  // The not-taken arm is ~600 ALU instructions (~2.4KB of emitted code),
  // far past jcc-rel8 range: the forward fixup must patch a rel32. Run
  // both arms (hash chosen so the branch is taken and not taken).
  Assembler a;
  a.ldx_w(r2, r1, 16);       // ctx.hash — data-dependent branch
  a.mov(r3, 0);
  a.jeq(r2, 0x5a5a5a5all, "far");
  for (int i = 0; i < 600; ++i) a.add(r3, 1);
  a.label("far");
  a.mov(r0, r3);
  a.exit();
  const Program p = a.finish();

  expect_all_tiers_agree(p, /*ctx_hash=*/0);           // falls through
  expect_all_tiers_agree(p, /*ctx_hash=*/0x5a5a5a5a);  // takes the branch
}

// ---- W^X buffer lifecycle ---------------------------------------------

TEST(BpfJit, WxLifecycleAcrossLoadAttachDetachReload) {
  constexpr uint32_t kSocks = 4;
  ReuseportSockArray socks(kSocks);

  netsim::ReuseportGroup group(80);
  std::vector<std::unique_ptr<netsim::ListeningSocket>> ls;
  for (WorkerId w = 0; w < kSocks; ++w) {
    ls.push_back(std::make_unique<netsim::ListeningSocket>(80, 16, w));
    group.add_socket(ls.back().get());
    socks.update(w, ls.back()->cookie());
  }

  Vm vm;
  vm.set_tier(ExecTier::Jit);
  std::string err;
  auto prog0 = vm.load(select_slot_program(0), {&socks}, &err);
  ASSERT_NE(prog0, nullptr) << err;
  EXPECT_EQ(prog0->tier(), expected_tier(ExecTier::Jit));
  if (jit::available()) {
    ASSERT_NE(prog0->plan()->jit_code(), nullptr);
    EXPECT_GT(prog0->plan()->jit_code()->code_bytes(), 0u);
  } else {
    EXPECT_EQ(prog0->plan()->jit_code(), nullptr);
  }

  const netsim::FourTuple t{0xc0a80001u, 0x0a000001u, 40000, 80};
  // Attach/detach cycles: the native buffer is owned by the LoadedProgram,
  // so reattaching must reuse it, never recompile or unmap.
  for (int round = 0; round < 3; ++round) {
    group.attach_program(&vm, prog0.get());
    EXPECT_EQ(group.select(t), ls[0].get()) << "round " << round;
    group.detach_program();
    EXPECT_FALSE(group.has_program());
  }

  // A second JIT'd program coexists with the first (two live RX mappings).
  auto prog1 = vm.load(select_slot_program(1), {&socks}, &err);
  ASSERT_NE(prog1, nullptr) << err;
  group.attach_program(&vm, prog1.get());
  EXPECT_EQ(group.select(t), ls[1].get());

  // Destroying the first program unmaps its buffer; the second must keep
  // executing from its own mapping afterwards.
  prog0.reset();
  EXPECT_EQ(group.select(t), ls[1].get());
  group.detach_program();

  EXPECT_EQ(group.stats().bpf_selections, 5u);
  EXPECT_EQ(group.stats().bpf_fallbacks, 0u);
}

// ---- fallback paths ----------------------------------------------------

TEST(BpfJit, AllocFailureFallsBackToTier2) {
  jit::testing::force_alloc_failure(true);
  Assembler a;
  a.mov(r0, 0x1234);
  a.exit();
  const Program p = a.finish();

  Vm vm;
  vm.set_tier(ExecTier::Jit);
  std::string err;
  auto prog = vm.load(p, {}, &err);
  jit::testing::force_alloc_failure(false);
  ASSERT_NE(prog, nullptr) << err;

  // Never a silent downgrade: actual tier, counter, and reason all say so.
  EXPECT_EQ(prog->tier(), ExecTier::Elide);
  ASSERT_NE(prog->plan(), nullptr);
  EXPECT_EQ(prog->plan()->jit_code(), nullptr);
  EXPECT_EQ(vm.jit_fallbacks(), 1u);
  EXPECT_FALSE(vm.jit_fallback_reason().empty());
  if (jit::available()) {
    EXPECT_NE(vm.jit_fallback_reason().find("mmap"), std::string::npos)
        << vm.jit_fallback_reason();
  }

  // The fallback plan still runs correctly, reporting its real tier.
  ReuseportCtx ctx;
  const auto run = vm.run(*prog, ctx);
  EXPECT_EQ(run.ret, 0x1234u);
  EXPECT_EQ(run.tier, ExecTier::Elide);

  // With the hook cleared, a fresh load at tier 3 recovers (on JIT hosts).
  auto prog2 = vm.load(p, {}, &err);
  ASSERT_NE(prog2, nullptr) << err;
  EXPECT_EQ(prog2->tier(), expected_tier(ExecTier::Jit));
  EXPECT_EQ(vm.jit_fallbacks(), jit::available() ? 1u : 2u);
}

TEST(BpfJit, EnvVarDisablesJit) {
  ::setenv("HERMES_BPF_JIT", "off", 1);
  EXPECT_FALSE(jit::available());

  Assembler a;
  a.mov(r0, 7);
  a.exit();
  auto l = load_at(a.finish(), ExecTier::Jit);
  EXPECT_EQ(l.prog->tier(), ExecTier::Elide);
  EXPECT_EQ(l.vm.jit_fallbacks(), 1u);
#if defined(__x86_64__)
  // On other hosts the architecture reason wins; the env reason is
  // specific to x86-64 builds.
  EXPECT_NE(l.vm.jit_fallback_reason().find("HERMES_BPF_JIT"),
            std::string::npos)
      << l.vm.jit_fallback_reason();
#endif
  ReuseportCtx ctx;
  EXPECT_EQ(l.vm.run(*l.prog, ctx).ret, 7u);

  ::unsetenv("HERMES_BPF_JIT");
}

TEST(BpfJit, VerifierRejectedProgramNeverReachesCodegen) {
  // r2 is uninitialized at entry: the verifier rejects the program, so
  // load() must fail BEFORE plan compilation — the codegen attempt counter
  // cannot move.
  Assembler a;
  a.mov(r0, r2);
  a.exit();
  const Program bad = a.finish();

  const uint64_t attempts_before = jit::compile_attempts();
  Vm vm;
  vm.set_tier(ExecTier::Jit);
  std::string err;
  auto prog = vm.load(bad, {}, &err);
  EXPECT_EQ(prog, nullptr);
  EXPECT_FALSE(err.empty());
  EXPECT_EQ(jit::compile_attempts(), attempts_before);
  EXPECT_EQ(vm.jit_fallbacks(), 0u);  // rejection is not a fallback

  // A valid tier-3 load afterwards does reach codegen exactly once.
  Assembler ok;
  ok.mov(r0, 1);
  ok.exit();
  auto good = vm.load(ok.finish(), {}, &err);
  ASSERT_NE(good, nullptr) << err;
  EXPECT_EQ(jit::compile_attempts(), attempts_before + 1);
}

// ---- counter invariance ------------------------------------------------

TEST(BpfJit, CountersAreTierInvariant) {
  // Fused superinstructions and elided checks must be charged identically
  // by the native code and the threaded interpreters.
  Assembler a;
  a.ldx_w(r3, r1, 16);       // ctx.hash (elidable)
  a.stx_dw(r10, -8, r3);     // stack spill (elidable)
  a.ldx_dw(r4, r10, -8);     // stack reload (elidable)
  a.ld_imm64(r1, 0x00ff00ff00ff00ffull);
  emit_popcount(a, r0, r1, r2);
  a.add(r0, r4);
  a.exit();
  const Program p = a.finish();

  Vm::RunResult res[4];
  for (int t = 1; t <= 3; ++t) {
    auto l = load_at(p, static_cast<ExecTier>(t));
    ReuseportCtx ctx;
    ctx.hash = 5;
    res[t] = l.vm.run(*l.prog, ctx);
    EXPECT_EQ(res[t].ret, 32u + 5u) << "tier " << t;
  }
  EXPECT_EQ(res[1].insns_executed, res[2].insns_executed);
  EXPECT_EQ(res[2].insns_executed, res[3].insns_executed);
  EXPECT_EQ(res[1].fused_hits, 1u);
  EXPECT_EQ(res[2].fused_hits, 1u);
  EXPECT_EQ(res[3].fused_hits, 1u);
  EXPECT_EQ(res[1].elided_checks, 0u);  // tier 1 keeps every check
  EXPECT_EQ(res[2].elided_checks, 3u);
  EXPECT_EQ(res[3].elided_checks, 3u);  // JIT charges the same elisions
}

}  // namespace
}  // namespace hermes::bpf
