// Execution-plan unit tests (src/bpf/plan.h): superinstruction fusion and
// its boundary conditions, tier selection and the HERMES_BPF_TIER default,
// instruction-count parity across tiers, Tier-2 check-elision counters,
// plan reuse across reuseport attach/detach, and batch-vs-scalar socket
// selection equality. The broad semantic equivalence claim (all tiers
// byte-identical over >= 10k fuzzed programs) lives in
// torture_bpf_diff_test; this file pins the plan compiler's structure.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "bpf/assembler.h"
#include "bpf/maps.h"
#include "bpf/plan.h"
#include "bpf/vm.h"
#include "core/dispatch_prog.h"
#include "netsim/listening_socket.h"
#include "netsim/reuseport.h"
#include "simcore/rng.h"

namespace hermes::bpf {
namespace {

// The 19-insn branch-free popcount core/dispatch_prog.cc emits
// (d = popcount(s), clobbering s and c). `mid` optionally binds a label on
// the sequence's second instruction — a jump target inside the segment,
// which must block fusion.
void emit_popcount(Assembler& a, R d, R s, R c, const char* mid = nullptr) {
  a.mov(d, s);
  if (mid != nullptr) a.label(mid);
  a.rsh(d, 1);
  a.ld_imm64(c, 0x5555555555555555ull);
  a.and_(d, c);
  a.sub(s, d);
  a.mov(d, s);
  a.rsh(d, 2);
  a.ld_imm64(c, 0x3333333333333333ull);
  a.and_(d, c);
  a.and_(s, c);
  a.add(d, s);
  a.mov(s, d);
  a.rsh(s, 4);
  a.add(d, s);
  a.ld_imm64(c, 0x0f0f0f0f0f0f0f0full);
  a.and_(d, c);
  a.ld_imm64(c, 0x0101010101010101ull);
  a.mul(d, c);
  a.rsh(d, 56);
}

struct Loaded {
  Vm vm;
  std::unique_ptr<LoadedProgram> prog;
};

Loaded load_at(const Program& p, ExecTier tier, std::vector<Map*> maps = {}) {
  Loaded l;
  l.vm.set_tier(tier);
  std::string err;
  l.prog = l.vm.load(p, std::move(maps), &err);
  EXPECT_NE(l.prog, nullptr) << err;
  return l;
}

TEST(BpfPlan, PopcountSequenceFusesToOneMicroOp) {
  Assembler a;
  a.mov(r1, 0x00ff00ff00ff00ffll);
  emit_popcount(a, r0, r1, r2);
  a.exit();
  const Program p = a.finish();

  auto l = load_at(p, ExecTier::Threaded);
  ASSERT_NE(l.prog->plan(), nullptr);
  const auto& st = l.prog->plan()->stats();
  EXPECT_EQ(st.fused_popcount, 1u);
  EXPECT_EQ(st.n_insns, p.size());
  EXPECT_EQ(st.n_uops, st.n_insns - 18);  // 19 insns -> 1 micro-op

  ReuseportCtx ctx;
  const auto run = l.vm.run(*l.prog, ctx);
  EXPECT_EQ(run.ret, 32u);
  EXPECT_EQ(run.fused_hits, 1u);
}

TEST(BpfPlan, JumpIntoSegmentBlocksFusionButKeepsSemantics) {
  // A never-taken branch targets the popcount sequence's second
  // instruction. Fusing would make that target vanish, so the compiler
  // must fall back to 1:1 micro-ops — and still compute the same value.
  Assembler a;
  a.mov(r0, 0);
  a.mov(r1, 0xffll);
  a.jeq(r1, 0, "mid");  // never taken; lands mid-sequence
  emit_popcount(a, r0, r1, r2, "mid");
  a.exit();
  const Program p = a.finish();

  auto l = load_at(p, ExecTier::Threaded);
  ASSERT_NE(l.prog->plan(), nullptr);
  EXPECT_EQ(l.prog->plan()->stats().fused_popcount, 0u);

  ReuseportCtx ctx;
  const auto run = l.vm.run(*l.prog, ctx);
  EXPECT_EQ(run.ret, 8u);
  EXPECT_EQ(run.fused_hits, 0u);

  // Tier 0 agrees, including on the instruction count.
  auto l0 = load_at(p, ExecTier::Interp);
  ReuseportCtx ctx0;
  const auto run0 = l0.vm.run(*l0.prog, ctx0);
  EXPECT_EQ(run0.ret, run.ret);
  EXPECT_EQ(run0.insns_executed, run.insns_executed);
}

TEST(BpfPlan, BlsrNearMissDoesNotFuse) {
  // mov t,v; sub t,2; and v,t — one immediate off the clear-lowest-bit
  // idiom. Must stay 1:1.
  Assembler a;
  a.mov(r1, 0b1100);
  a.mov(r2, r1);
  a.sub(r2, 2);
  a.and_(r1, r2);
  a.mov(r0, r1);
  a.exit();

  auto l = load_at(a.finish(), ExecTier::Threaded);
  ASSERT_NE(l.prog->plan(), nullptr);
  EXPECT_EQ(l.prog->plan()->stats().fused_blsr, 0u);
  ReuseportCtx ctx;
  EXPECT_EQ(l.vm.run(*l.prog, ctx).ret, 0b1100u & 0b1010u);
}

TEST(BpfPlan, InsnCountIsTierInvariantAcrossFusion) {
  Assembler a;
  a.mov(r1, 0x1234567812345678ll);
  emit_popcount(a, r0, r1, r2);
  a.exit();
  const Program p = a.finish();

  uint64_t ret[3], insns[3];
  for (int t = 0; t < 3; ++t) {
    auto l = load_at(p, static_cast<ExecTier>(t));
    ReuseportCtx ctx;
    const auto run = l.vm.run(*l.prog, ctx);
    ret[t] = run.ret;
    insns[t] = run.insns_executed;
    EXPECT_EQ(run.tier, static_cast<ExecTier>(t));
    EXPECT_EQ(run.fused_hits, t == 0 ? 0u : 1u);
  }
  EXPECT_EQ(ret[0], ret[1]);
  EXPECT_EQ(ret[0], ret[2]);
  EXPECT_EQ(insns[0], insns[1]);  // fused op charges the 19 source insns
  EXPECT_EQ(insns[0], insns[2]);
}

TEST(BpfPlan, ElisionOnlyAtTier2) {
  // ctx load + stack store/load: all proven by the verifier, so Tier 2
  // elides every check while Tier 1 keeps them all.
  Assembler a;
  a.ldx_w(r0, r1, 16);      // ctx.hash
  a.stx_w(r10, -4, r0);
  a.ldx_w(r0, r10, -4);
  a.exit();
  const Program p = a.finish();

  auto l1 = load_at(p, ExecTier::Threaded);
  ASSERT_NE(l1.prog->plan(), nullptr);
  EXPECT_EQ(l1.prog->plan()->stats().elided_sites, 0u);
  ReuseportCtx ctx1;
  ctx1.hash = 0xabcd;
  const auto run1 = l1.vm.run(*l1.prog, ctx1);
  EXPECT_EQ(run1.ret, 0xabcdu);
  EXPECT_EQ(run1.elided_checks, 0u);

  auto l2 = load_at(p, ExecTier::Elide);
  ASSERT_NE(l2.prog->plan(), nullptr);
  EXPECT_EQ(l2.prog->plan()->stats().elided_sites, 3u);
  EXPECT_EQ(l2.prog->plan()->stats().checked_sites, 0u);
  ReuseportCtx ctx2;
  ctx2.hash = 0xabcd;
  const auto run2 = l2.vm.run(*l2.prog, ctx2);
  EXPECT_EQ(run2.ret, 0xabcdu);
  EXPECT_EQ(run2.elided_checks, 3u);
}

TEST(BpfPlan, TierSelectionAndPlanPresence) {
  // A fresh Vm starts at the process default (HERMES_BPF_TIER, read once);
  // set_tier overrides per-Vm, and the loaded program records the tier it
  // was compiled for. Interp carries no plan at all.
  Vm fresh;
  EXPECT_EQ(fresh.tier(), default_tier());

  Assembler a;
  a.mov(r0, 1);
  a.exit();
  const Program p = a.finish();

  auto li = load_at(p, ExecTier::Interp);
  EXPECT_EQ(li.prog->tier(), ExecTier::Interp);
  EXPECT_EQ(li.prog->plan(), nullptr);

  auto lt = load_at(p, ExecTier::Threaded);
  EXPECT_EQ(lt.prog->tier(), ExecTier::Threaded);
  ASSERT_NE(lt.prog->plan(), nullptr);
  EXPECT_EQ(lt.prog->plan()->tier(), ExecTier::Threaded);
}

TEST(BpfPlan, PlanReusedAcrossAttachDetach) {
  // The plan is compiled once at Vm::load and owned by the LoadedProgram;
  // reuseport attach/detach cycles must not recompile or invalidate it.
  core::DispatchProgramParams params;
  params.num_groups = 1;
  params.workers_per_group = 8;
  ArrayMap sel(1, sizeof(uint64_t));
  sel.store_u64(0, 0xff);
  ReuseportSockArray socks(8);
  for (uint32_t w = 0; w < 8; ++w) socks.update(w, 100 + w);

  Vm vm;
  vm.set_tier(ExecTier::Elide);
  std::string err;
  auto loaded =
      vm.load(core::build_dispatch_program(params), {&sel, &socks}, &err);
  ASSERT_NE(loaded, nullptr) << err;
  const ExecutionPlan* plan_before = loaded->plan();
  ASSERT_NE(plan_before, nullptr);

  netsim::ReuseportGroup group(80);
  std::vector<std::unique_ptr<netsim::ListeningSocket>> ls;
  for (WorkerId w = 0; w < 8; ++w) {
    ls.push_back(std::make_unique<netsim::ListeningSocket>(80, 16, w));
    group.add_socket(ls.back().get());
    socks.update(w, ls.back()->cookie());
  }

  sim::Rng rng(3);
  std::vector<netsim::ListeningSocket*> first;
  for (int round = 0; round < 3; ++round) {
    group.attach_program(&vm, loaded.get());
    for (int i = 0; i < 64; ++i) {
      netsim::FourTuple t{static_cast<uint32_t>(rng.next_u64()), 1,
                          static_cast<uint16_t>(i + 1024), 80};
      netsim::ListeningSocket* s = group.select(t);
      if (round == 0) {
        first.push_back(s);
      } else {
        EXPECT_EQ(s, first[static_cast<size_t>(i)]) << "round " << round;
      }
    }
    EXPECT_EQ(loaded->plan(), plan_before) << "plan recompiled";
    group.detach_program();
    rng = sim::Rng(3);  // same tuples every round
  }
  EXPECT_GT(group.stats().bpf_selections, 0u);
}

TEST(BpfPlan, BatchSelectMatchesScalarSelect) {
  core::DispatchProgramParams params;
  params.num_groups = 2;
  params.workers_per_group = 8;
  ArrayMap sel(2, sizeof(uint64_t));
  sel.store_u64(0, 0xad);
  sel.store_u64(1, 0x5f);
  ReuseportSockArray socks(16);

  Vm vm;
  std::string err;
  auto loaded =
      vm.load(core::build_dispatch_program(params), {&sel, &socks}, &err);
  ASSERT_NE(loaded, nullptr) << err;

  netsim::ReuseportGroup group(443);
  std::vector<std::unique_ptr<netsim::ListeningSocket>> ls;
  for (WorkerId w = 0; w < 16; ++w) {
    ls.push_back(std::make_unique<netsim::ListeningSocket>(443, 16, w));
    group.add_socket(ls.back().get());
    socks.update(w, ls.back()->cookie());
  }
  group.attach_program(&vm, loaded.get());

  sim::Rng rng(11);
  std::vector<netsim::FourTuple> tuples(256);
  for (auto& t : tuples) {
    t.saddr = static_cast<uint32_t>(rng.next_u64());
    t.daddr = static_cast<uint32_t>(rng.next_u64());
    t.sport = static_cast<uint16_t>(1024 + (rng.next_u64() % 60000));
    t.dport = 443;
  }

  std::vector<netsim::ListeningSocket*> scalar(tuples.size());
  for (size_t i = 0; i < tuples.size(); ++i) scalar[i] = group.select(tuples[i]);
  const auto mid = group.stats();

  std::vector<netsim::ListeningSocket*> batched(tuples.size());
  group.select_batch(tuples, batched);
  const auto after = group.stats();

  EXPECT_EQ(batched, scalar);
  // The batch path accounts identically to 256 scalar selects.
  EXPECT_EQ(after.bpf_selections - mid.bpf_selections, mid.bpf_selections);
  EXPECT_EQ(after.bpf_fallbacks - mid.bpf_fallbacks, mid.bpf_fallbacks);
  EXPECT_EQ(after.bpf_insns - mid.bpf_insns, mid.bpf_insns);
  EXPECT_GT(mid.bpf_selections, 0u);

  // No-program batch path: pure hash fallback, still identical.
  group.detach_program();
  std::vector<netsim::ListeningSocket*> hash_scalar(tuples.size());
  for (size_t i = 0; i < tuples.size(); ++i) {
    hash_scalar[i] = group.select(tuples[i]);
  }
  std::vector<netsim::ListeningSocket*> hash_batched(tuples.size());
  group.select_batch(tuples, hash_batched);
  EXPECT_EQ(hash_batched, hash_scalar);
}

TEST(BpfPlan, DispatchProgramPlanShape) {
  // The production program's plan: 2 fused popcounts, the full
  // (workers_per_group-1)-unit blsr ladder, 1 isolate-lowest-bit, and at
  // Tier 2 every memory/helper site elided (straight-line program — the
  // analysis visits everything).
  core::DispatchProgramParams params;
  params.num_groups = 2;
  params.workers_per_group = 8;
  ArrayMap sel(2, sizeof(uint64_t));
  ReuseportSockArray socks(16);

  Vm vm;
  vm.set_tier(ExecTier::Elide);
  std::string err;
  auto loaded =
      vm.load(core::build_dispatch_program(params), {&sel, &socks}, &err);
  ASSERT_NE(loaded, nullptr) << err;
  const auto& st = loaded->plan()->stats();
  EXPECT_EQ(st.fused_popcount, 2u);
  EXPECT_EQ(st.fused_blsr, 63u);
  EXPECT_EQ(st.fused_isolate, 1u);
  EXPECT_EQ(st.checked_sites, 0u);
  EXPECT_GT(st.elided_sites, 0u);
  EXPECT_LT(st.n_uops, st.n_insns);
}

}  // namespace
}  // namespace hermes::bpf
