// Verifier spill/fill tracking: pointers may round-trip through aligned
// 64-bit stack slots (the kernel's rule), partial writes invalidate them,
// and branch merges meet slot states conservatively.
#include <gtest/gtest.h>

#include <memory>

#include "bpf/assembler.h"
#include "bpf/maps.h"
#include "bpf/vm.h"

namespace hermes::bpf {
namespace {

class SpillTest : public ::testing::Test {
 protected:
  SpillTest()
      : array_(std::make_unique<ArrayMap>(1, 8)),
        socks_(std::make_unique<ReuseportSockArray>(4)) {
    maps_ = {array_.get(), socks_.get()};
  }

  VerifyResult verify_prog(Program p) { return verify(p, maps_); }

  std::unique_ptr<ArrayMap> array_;
  std::unique_ptr<ReuseportSockArray> socks_;
  std::vector<Map*> maps_;
};

TEST_F(SpillTest, SpillAndFillStackPointer) {
  // Spill a derived stack pointer, restore it, and use it for a store.
  Assembler a;
  a.mov(r2, r10);
  a.add(r2, -16);
  a.stx_dw(r10, -8, r2);   // spill r2
  a.mov(r2, 0);            // clobber the register
  a.ldx_dw(r3, r10, -8);   // fill into r3: restored PtrStack(-16)
  a.st_w(r3, 0, 42);       // store through the restored pointer
  a.ldx_w(r0, r10, -16);   // read it back
  a.exit();
  const auto res = verify_prog(a.finish());
  EXPECT_TRUE(res) << res.error;

  // And it runs: the value written through the restored pointer is read.
  Vm vm;
  std::string err;
  Assembler b;
  b.mov(r2, r10);
  b.add(r2, -16);
  b.stx_dw(r10, -8, r2);
  b.mov(r2, 0);
  b.ldx_dw(r3, r10, -8);
  b.st_w(r3, 0, 42);
  b.ldx_w(r0, r10, -16);
  b.exit();
  auto prog = vm.load(b.finish(), maps_, &err);
  ASSERT_NE(prog, nullptr) << err;
  ReuseportCtx ctx;
  EXPECT_EQ(vm.run(*prog, ctx).ret, 42u);
}

TEST_F(SpillTest, SpilledMapValuePointerUsableAfterFill) {
  Assembler a;
  a.st_w(r10, -4, 0);
  a.ld_map_fd(r1, 0);
  a.mov(r2, r10);
  a.add(r2, -4);
  a.call(HelperId::MapLookupElem);
  a.jeq(r0, 0, "miss");
  a.stx_dw(r10, -16, r0);  // spill the (non-null) map value pointer
  a.mov(r0, 0);
  a.ldx_dw(r4, r10, -16);  // fill
  a.ldx_dw(r0, r4, 0);     // deref the restored pointer
  a.exit();
  a.label("miss");
  a.mov(r0, 0);
  a.exit();
  const auto res = verify_prog(a.finish());
  EXPECT_TRUE(res) << res.error;
}

TEST_F(SpillTest, MisalignedPointerSpillRejected) {
  Assembler a;
  a.mov(r2, r10);
  a.stx_dw(r10, -12, r2);  // not 8-aligned
  a.mov(r0, 0);
  a.exit();
  const auto res = verify_prog(a.finish());
  EXPECT_FALSE(res);
  EXPECT_NE(res.error.find("spill"), std::string::npos);
}

TEST_F(SpillTest, NarrowPointerStoreRejected) {
  Assembler a;
  a.mov(r2, r10);
  a.stx_w(r10, -8, r2);  // 32-bit store of a pointer
  a.mov(r0, 0);
  a.exit();
  EXPECT_FALSE(verify_prog(a.finish()));
}

TEST_F(SpillTest, PointerSpillToMapValueRejected) {
  // Pointers may spill to the stack only — never leak into map memory.
  Assembler a;
  a.st_w(r10, -4, 0);
  a.ld_map_fd(r1, 0);
  a.mov(r2, r10);
  a.add(r2, -4);
  a.call(HelperId::MapLookupElem);
  a.jeq(r0, 0, "miss");
  a.mov(r2, r10);
  a.stx_dw(r0, 0, r2);  // write a stack pointer into the map value
  a.label("miss");
  a.mov(r0, 0);
  a.exit();
  EXPECT_FALSE(verify_prog(a.finish()));
}

TEST_F(SpillTest, PartialOverwriteInvalidatesSpill) {
  Assembler a;
  a.mov(r2, r10);
  a.stx_dw(r10, -8, r2);   // spill pointer
  a.st_w(r10, -8, 7);      // partially overwrite the slot with data
  a.ldx_dw(r3, r10, -8);   // fill: now just a scalar
  a.ldx_w(r0, r3, 0);      // deref -> must be rejected
  a.exit();
  const auto res = verify_prog(a.finish());
  EXPECT_FALSE(res);
  EXPECT_NE(res.error.find("non-pointer"), std::string::npos);
}

TEST_F(SpillTest, BranchMergeDegradesMismatchedSlots) {
  // One path spills a pointer, the other spills a scalar into the same
  // slot; after the merge the fill is a scalar and cannot be dereferenced.
  Assembler a;
  a.ldx_w(r3, r1, kCtxOffHash);
  a.mov(r2, r10);
  a.jeq(r3, 0, "scalar_path");
  a.stx_dw(r10, -8, r2);   // spill pointer
  a.ja("join");
  a.label("scalar_path");
  a.mov(r4, 7);
  a.stx_dw(r10, -8, r4);   // spill scalar
  a.label("join");
  a.ldx_dw(r5, r10, -8);
  a.ldx_w(r0, r5, -4);     // deref merged slot -> rejected
  a.exit();
  EXPECT_FALSE(verify_prog(a.finish()));
}

TEST_F(SpillTest, PlainDataSlotsStillReadAsScalars) {
  // Regression guard: ordinary data stores keep working as before.
  Assembler a;
  a.mov(r2, 99);
  a.stx_dw(r10, -8, r2);
  a.ldx_dw(r0, r10, -8);
  a.exit();
  const auto res = verify_prog(a.finish());
  EXPECT_TRUE(res) << res.error;
}

}  // namespace
}  // namespace hermes::bpf
