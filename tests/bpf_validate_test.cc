// Translation-validator tests (src/bpf/jit/validate/): decoder round-trips
// over the emitter subset, clean programs accepted at tier 3, and the
// mutation self-test — jit::testing::set_mutation plants one targeted
// codegen bug per compile (flipped rel32, wrong immediate, dropped bounds
// check, swapped registers) and the validator must reject every one at
// load time, landing the program on tier 2 through the jit_fallbacks
// machinery with the validate_reject kind. Mutated buffers are never
// executed: rejection happens before the first run() and frees the code.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bpf/assembler.h"
#include "bpf/insn.h"
#include "bpf/jit/codegen.h"
#include "bpf/jit/jit.h"
#include "bpf/jit/validate/validate.h"
#include "bpf/jit/validate/x86_decode.h"
#include "bpf/maps.h"
#include "bpf/plan.h"
#include "bpf/vm.h"

namespace hermes::bpf {
namespace {

using jit::testing::Mutation;

// Force the validator on for every test in this file regardless of build
// type, restoring the caller's environment afterwards (check.sh tier
// sweeps run this binary with their own settings).
class BpfValidateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* v = std::getenv("HERMES_BPF_VALIDATE");
    had_env_ = v != nullptr;
    if (had_env_) saved_ = v;
    ::setenv("HERMES_BPF_VALIDATE", "1", 1);
  }
  void TearDown() override {
    jit::testing::set_mutation(Mutation::None);
    if (had_env_) {
      ::setenv("HERMES_BPF_VALIDATE", saved_.c_str(), 1);
    } else {
      ::unsetenv("HERMES_BPF_VALIDATE");
    }
  }

 private:
  bool had_env_ = false;
  std::string saved_;
};

struct Loaded {
  Vm vm;
  std::unique_ptr<LoadedProgram> prog;
  std::string err;
};

Loaded load_jit(const Program& p, std::vector<Map*> maps = {}) {
  Loaded l;
  l.vm.set_tier(ExecTier::Jit);
  l.prog = l.vm.load(p, std::move(maps), &l.err);
  return l;
}

Program branchy_program() {
  Assembler a;
  a.mov(r6, 7)
      .jeq(r6, 7, "hit")
      .mov(r0, 1)
      .exit()
      .label("hit")
      .mov(r0, 2)
      .exit();
  return a.finish();
}

// A memory access with no covering verifier fact, so codegen must keep
// the rt_check_access call — exactly the call the SkipBoundsCheck
// mutation deletes. Every REACHABLE access is proven by the verifier's
// abstract interpreter, so the checked path is reached through provably
// dead code: the branch condition is constant, the fallthrough edge is
// pruned as infeasible, and the load on it is never visited (hence never
// proven) yet still compiled.
Program checked_access_program() {
  Assembler a;
  a.mov(r6, 1)
      .mov(r7, r10)
      .jeq(r6, 1, "skip")
      .ldx_w(r0, r7, -8)  // dead: unproven, compiled as a checked access
      .label("skip")
      .mov(r0, 7)
      .exit();
  return a.finish();
}

// ---------------------------------------------------------------------
// Decoder round-trips: encode through CodeBuf (the emitter), decode with
// the independent table decoder, compare the normalized operands.
// ---------------------------------------------------------------------

using jit::validate::XInsn;
using jit::validate::XOp;

XInsn decode_at(const jit::CodeBuf& b, size_t off) {
  XInsn x;
  std::string err;
  EXPECT_TRUE(jit::validate::decode_one(b.data() + off, b.size() - off, &x,
                                        &err))
      << err;
  return x;
}

TEST_F(BpfValidateTest, DecoderRoundTripsAluAndMoves) {
  jit::CodeBuf b;
  b.mov_rr64(jit::RBX, jit::R13);
  XInsn x = decode_at(b, 0);
  EXPECT_EQ(x.op, XOp::MovRR);
  EXPECT_TRUE(x.w);
  EXPECT_EQ(x.base, jit::RBX);
  EXPECT_EQ(x.reg, jit::R13);

  jit::CodeBuf c;
  c.mov_ri(jit::R14, 0x11223344556677ull);  // needs the movabs form
  x = decode_at(c, 0);
  EXPECT_EQ(x.op, XOp::MovRI);
  EXPECT_EQ(static_cast<uint64_t>(x.imm), 0x11223344556677ull);
  EXPECT_EQ(x.base, jit::R14);

  jit::CodeBuf d;
  d.mov_ri(jit::RCX, 42);  // compact 32-bit zero-extending form
  x = decode_at(d, 0);
  EXPECT_EQ(x.op, XOp::MovRI);
  EXPECT_EQ(x.imm, 42);

  jit::CodeBuf e;
  e.alu_ri64(0, jit::R12, 19);  // add r12, 19 (the accounting flush)
  x = decode_at(e, 0);
  EXPECT_EQ(x.op, XOp::Add);
  EXPECT_TRUE(x.imm_form);
  EXPECT_EQ(x.base, jit::R12);
  EXPECT_EQ(x.imm, 19);
}

TEST_F(BpfValidateTest, DecoderRoundTripsMemoryAndBranches) {
  jit::CodeBuf b;
  b.load64(jit::R9, jit::RSP, 48);
  XInsn x = decode_at(b, 0);
  EXPECT_EQ(x.op, XOp::Load);
  EXPECT_EQ(x.width, 8);
  EXPECT_EQ(x.reg, jit::R9);
  EXPECT_EQ(x.base, jit::RSP);
  EXPECT_EQ(x.disp, 48);

  jit::CodeBuf c;
  c.store16(jit::RBP, -4, jit::R8);
  x = decode_at(c, 0);
  EXPECT_EQ(x.op, XOp::Store);
  EXPECT_EQ(x.width, 2);
  EXPECT_EQ(x.base, jit::RBP);
  EXPECT_EQ(x.disp, -4);
  EXPECT_EQ(x.reg, jit::R8);

  jit::CodeBuf d;
  const size_t pos = d.jcc_rel32(jit::CC_AE);
  d.patch_rel32(pos, 0x120);
  x = decode_at(d, 0);
  EXPECT_EQ(x.op, XOp::Jcc);
  EXPECT_FALSE(x.rel8);
  EXPECT_EQ(x.cc, jit::CC_AE);
  EXPECT_EQ(static_cast<uint32_t>(x.len) + x.rel, 0x120);

  jit::CodeBuf e;
  e.add_mem_imm64(jit::R11, 40, 3);
  x = decode_at(e, 0);
  EXPECT_EQ(x.op, XOp::AddMem);
  EXPECT_EQ(x.base, jit::R11);
  EXPECT_EQ(x.disp, 40);
  EXPECT_EQ(x.imm, 3);
}

TEST_F(BpfValidateTest, DecoderRejectsBytesOutsideTheEmitterSubset) {
  // 0F 05 (syscall) is not in the emitter vocabulary.
  const uint8_t bad[] = {0x0F, 0x05};
  XInsn x;
  std::string err;
  EXPECT_FALSE(jit::validate::decode_one(bad, sizeof(bad), &x, &err));
  EXPECT_FALSE(err.empty());
}

// ---------------------------------------------------------------------
// Acceptance: clean compiles must validate (no false rejections).
// ---------------------------------------------------------------------

TEST_F(BpfValidateTest, CleanProgramsValidateAndRunAtTier3) {
  const uint64_t r0_before = jit::validate::rejects();
  const uint64_t a0 = jit::validate::accepts();

  for (const Program& p :
       {branchy_program(), checked_access_program()}) {
    auto l = load_jit(p);
    ASSERT_NE(l.prog, nullptr) << l.err;
    if (jit::available()) {
      EXPECT_EQ(l.prog->tier(), ExecTier::Jit)
          << l.vm.jit_fallback_reason();
      ReuseportCtx ctx;
      ctx.hash = 5;
      (void)l.vm.run(*l.prog, ctx);
    }
  }
  if (jit::available()) {
    EXPECT_GT(jit::validate::accepts(), a0);
    EXPECT_EQ(jit::validate::rejects(), r0_before);
  }
}

TEST_F(BpfValidateTest, MapProgramsValidateBakedImmediates) {
  if (!jit::available()) GTEST_SKIP() << "JIT unavailable on this host";
  ArrayMap map(8, 16);
  Assembler a;
  a.mov(r7, r10)
      .sub(r7, 8)
      .st_w(r7, 0, 3)
      .ld_map_fd(r1, 0)
      .mov(r2, r7)
      .call(HelperId::MapLookupElem)
      .jne(r0, 0, "hit")
      .mov(r0, 0)
      .exit()
      .label("hit")
      .ldx_w(r0, r0, 0)
      .exit();
  const uint64_t a0 = jit::validate::accepts();
  auto l = load_jit(a.finish(), {&map});
  ASSERT_NE(l.prog, nullptr) << l.err;
  EXPECT_EQ(l.prog->tier(), ExecTier::Jit) << l.vm.jit_fallback_reason();
  EXPECT_GT(jit::validate::accepts(), a0);
}

// ---------------------------------------------------------------------
// The mutation self-test: every planted codegen bug must be rejected.
// ---------------------------------------------------------------------

struct MutationCase {
  Mutation mutation;
  const char* name;
  Program (*program)();
};

Program add_program() {
  Assembler a;
  a.mov(r3, 5).mov(r4, 9).add(r3, r4).mov(r0, r3).exit();
  return a.finish();
}

Program imm_program() {
  Assembler a;
  a.mov(r0, 41).add(r0, 1).exit();
  return a.finish();
}

void expect_mutant_killed(const MutationCase& mc) {
  SCOPED_TRACE(mc.name);
  const Program p = mc.program();
  const uint64_t rejects0 = jit::validate::rejects();

  jit::testing::set_mutation(mc.mutation);
  auto l = load_jit(p);
  jit::testing::set_mutation(Mutation::None);

  ASSERT_NE(l.prog, nullptr) << l.err;
  // The mutated buffer must be rejected before it can ever run: the
  // program lands on tier 2 with the validate_reject fallback kind and a
  // decoded-window diagnostic.
  EXPECT_EQ(l.prog->tier(), ExecTier::Elide);
  EXPECT_EQ(l.vm.jit_fallbacks(), 1u);
  EXPECT_EQ(l.vm.jit_fallback_kind(), JitFallbackKind::ValidateReject);
  EXPECT_EQ(l.vm.jit_fallbacks_by_kind(JitFallbackKind::ValidateReject), 1u);
  EXPECT_NE(l.vm.jit_fallback_reason().find("validation rejected"),
            std::string::npos)
      << l.vm.jit_fallback_reason();
  EXPECT_GT(jit::validate::rejects(), rejects0);

  // The tier-2 plan it fell back to still runs correctly.
  ReuseportCtx ctx;
  const auto run = l.vm.run(*l.prog, ctx);
  EXPECT_EQ(run.tier, ExecTier::Elide);

  // A clean reload of the same program re-validates and reaches tier 3.
  const uint64_t accepts0 = jit::validate::accepts();
  auto clean = load_jit(p);
  ASSERT_NE(clean.prog, nullptr) << clean.err;
  EXPECT_EQ(clean.prog->tier(), ExecTier::Jit)
      << clean.vm.jit_fallback_reason();
  EXPECT_GT(jit::validate::accepts(), accepts0);
}

TEST_F(BpfValidateTest, KillsFlippedBranchTarget) {
  if (!jit::available()) GTEST_SKIP() << "JIT unavailable on this host";
  expect_mutant_killed({Mutation::FlipRel32, "FlipRel32", branchy_program});
}

TEST_F(BpfValidateTest, KillsWrongImmediate) {
  if (!jit::available()) GTEST_SKIP() << "JIT unavailable on this host";
  expect_mutant_killed({Mutation::WrongImmediate, "WrongImmediate",
                        imm_program});
}

TEST_F(BpfValidateTest, KillsSkippedBoundsCheck) {
  if (!jit::available()) GTEST_SKIP() << "JIT unavailable on this host";
  expect_mutant_killed({Mutation::SkipBoundsCheck, "SkipBoundsCheck",
                        checked_access_program});
}

TEST_F(BpfValidateTest, KillsSwappedRegisters) {
  if (!jit::available()) GTEST_SKIP() << "JIT unavailable on this host";
  expect_mutant_killed({Mutation::SwapRegisters, "SwapRegisters",
                        add_program});
}

// ---------------------------------------------------------------------
// Gating and counter split.
// ---------------------------------------------------------------------

TEST_F(BpfValidateTest, DisabledGateSkipsValidation) {
  if (!jit::available()) GTEST_SKIP() << "JIT unavailable on this host";
  ::setenv("HERMES_BPF_VALIDATE", "0", 1);
  EXPECT_FALSE(jit::validate::enabled());
  const uint64_t a0 = jit::validate::accepts();
  const uint64_t rejects0 = jit::validate::rejects();
  // Even a mutated compile goes unvalidated straight to tier 3; do NOT
  // run it. This is exactly why the gate defaults on outside release.
  jit::testing::set_mutation(Mutation::WrongImmediate);
  auto l = load_jit(imm_program());
  jit::testing::set_mutation(Mutation::None);
  ASSERT_NE(l.prog, nullptr) << l.err;
  EXPECT_EQ(l.prog->tier(), ExecTier::Jit);
  EXPECT_EQ(jit::validate::accepts(), a0);
  EXPECT_EQ(jit::validate::rejects(), rejects0);
  ::setenv("HERMES_BPF_VALIDATE", "1", 1);
}

TEST_F(BpfValidateTest, FallbackCountersSplitByKind) {
  // This test drives HERMES_BPF_JIT itself (the dedicated fallback leg
  // runs the whole jit label with it set to off), so save the incoming
  // value and pin each sub-case's setting explicitly.
  const char* prev_jit = ::getenv("HERMES_BPF_JIT");
  const std::string saved_jit = prev_jit != nullptr ? prev_jit : "";
  ::unsetenv("HERMES_BPF_JIT");

  if (jit::available()) {
    // Alloc failure — codegen must actually be attempted for the W^X
    // allocation to fail, so this sub-case needs a usable JIT.
    jit::testing::force_alloc_failure(true);
    auto alloc = load_jit(imm_program());
    jit::testing::force_alloc_failure(false);
    ASSERT_NE(alloc.prog, nullptr) << alloc.err;
    EXPECT_EQ(alloc.prog->tier(), ExecTier::Elide);
    EXPECT_EQ(alloc.vm.jit_fallback_kind(), JitFallbackKind::AllocFailure);
    EXPECT_EQ(
        alloc.vm.jit_fallbacks_by_kind(JitFallbackKind::AllocFailure), 1u);
  }

  // Explicitly disabled.
  ::setenv("HERMES_BPF_JIT", "off", 1);
  auto off = load_jit(imm_program());
  ::unsetenv("HERMES_BPF_JIT");
  ASSERT_NE(off.prog, nullptr) << off.err;
  EXPECT_EQ(off.prog->tier(), ExecTier::Elide);
  EXPECT_EQ(off.vm.jit_fallback_kind(), JitFallbackKind::Disabled);
  EXPECT_EQ(off.vm.jit_fallbacks_by_kind(JitFallbackKind::Disabled), 1u);

  if (jit::available()) {
    // Validation rejection lands in its own bucket, not the others'.
    jit::testing::set_mutation(Mutation::WrongImmediate);
    auto rej = load_jit(imm_program());
    jit::testing::set_mutation(Mutation::None);
    ASSERT_NE(rej.prog, nullptr) << rej.err;
    EXPECT_EQ(rej.vm.jit_fallback_kind(), JitFallbackKind::ValidateReject);
    EXPECT_EQ(
        rej.vm.jit_fallbacks_by_kind(JitFallbackKind::ValidateReject), 1u);
    EXPECT_EQ(rej.vm.jit_fallbacks_by_kind(JitFallbackKind::AllocFailure),
              0u);
  }

  if (prev_jit != nullptr) {
    ::setenv("HERMES_BPF_JIT", saved_jit.c_str(), 1);
  } else {
    ::unsetenv("HERMES_BPF_JIT");
  }
}

}  // namespace
}  // namespace hermes::bpf
