// Verifier: every safety rule gets at least one accept and one reject case.
#include <gtest/gtest.h>

#include <memory>

#include "bpf/assembler.h"
#include "bpf/maps.h"
#include "bpf/verifier.h"

namespace hermes::bpf {
namespace {

class VerifierTest : public ::testing::Test {
 protected:
  VerifierTest()
      : array_map_(std::make_unique<ArrayMap>(1, 8)),
        sock_map_(std::make_unique<ReuseportSockArray>(64)) {
    maps_ = {array_map_.get(), sock_map_.get()};
  }

  VerifyResult verify_prog(Program p) { return verify(p, maps_); }

  std::unique_ptr<ArrayMap> array_map_;
  std::unique_ptr<ReuseportSockArray> sock_map_;
  std::vector<Map*> maps_;
};

TEST_F(VerifierTest, MinimalProgramAccepted) {
  Assembler a;
  a.mov(r0, 0);
  a.exit();
  EXPECT_TRUE(verify_prog(a.finish()));
}

TEST_F(VerifierTest, EmptyProgramRejected) {
  const auto res = verify_prog({});
  EXPECT_FALSE(res);
  EXPECT_NE(res.error.find("empty"), std::string::npos);
}

TEST_F(VerifierTest, TooLongProgramRejected) {
  Program p(kMaxProgramLen + 1, Insn{Op::MovImm, 0, 0, 0, 0});
  p.back() = Insn{Op::Exit};
  EXPECT_FALSE(verify_prog(std::move(p)));
}

TEST_F(VerifierTest, FallThroughOffEndRejected) {
  Assembler a;
  a.mov(r0, 0);  // no exit
  const auto res = verify_prog(a.finish());
  EXPECT_FALSE(res);
  EXPECT_NE(res.error.find("fall-through"), std::string::npos);
}

TEST_F(VerifierTest, BackwardJumpRejected) {
  // An infinite loop: r0 stays 0, so the backward edge never becomes
  // infeasible and the loop can't be proven to terminate.
  Program p = {
      {Op::MovImm, 0, 0, 0, 0},
      {Op::JeqImm, 0, 0, -2, 0},  // while (r0 == 0) goto top
      {Op::Exit},
  };
  const auto res = verify_prog(std::move(p));
  EXPECT_FALSE(res);
  EXPECT_NE(res.error.find("backward"), std::string::npos);
}

TEST_F(VerifierTest, BoundedLoopAccepted) {
  Assembler a;
  a.mov(r7, 0);
  a.mov(r0, 0);
  a.label("top");
  a.add(r0, 2);
  a.add(r7, 1);
  a.jlt(r7, 8, "top");  // backward edge with a provable 8-trip bound
  a.exit();
  const auto res = verify_prog(a.finish());
  EXPECT_TRUE(res) << res.error;
  EXPECT_EQ(res.max_loop_trips, 8u);
}

TEST_F(VerifierTest, LoopExceedingTripBoundRejected) {
  Assembler a;
  a.mov(r7, 0);
  a.label("top");
  a.add(r7, 1);
  a.jlt(r7, 1000, "top");  // terminates, but past the analysis trip bound
  a.mov(r0, 0);
  a.exit();
  const auto res = verify_prog(a.finish());
  EXPECT_FALSE(res);
  EXPECT_NE(res.error.find("trip bound"), std::string::npos);
}

TEST_F(VerifierTest, JumpIntoLoopBodyRejected) {
  Program p = {
      {Op::MovImm, 7, 0, 0, 0},   // 0:
      {Op::Ja, 0, 0, 2, 0},       // 1: goto 4 — enters the loop mid-body
      {Op::AddImm, 7, 0, 0, 1},   // 2: loop header
      {Op::AddImm, 7, 0, 0, 1},   // 3:
      {Op::JltImm, 7, 0, -3, 8},  // 4: if (r7 < 8) goto 2
      {Op::MovImm, 0, 0, 0, 0},   // 5:
      {Op::Exit},                 // 6:
  };
  const auto res = verify_prog(std::move(p));
  EXPECT_FALSE(res);
  EXPECT_NE(res.error.find("loop"), std::string::npos);
}

TEST_F(VerifierTest, JumpOutOfBoundsRejected) {
  Program p = {
      {Op::Ja, 0, 0, 100, 0},
      {Op::Exit},
  };
  EXPECT_FALSE(verify_prog(std::move(p)));
}

TEST_F(VerifierTest, UnreachableCodeRejected) {
  Assembler a;
  a.mov(r0, 0);
  a.exit();
  a.mov(r0, 1);  // dead
  a.exit();
  const auto res = verify_prog(a.finish());
  EXPECT_FALSE(res);
  EXPECT_NE(res.error.find("unreachable"), std::string::npos);
}

TEST_F(VerifierTest, ReadUninitializedRegisterRejected) {
  Assembler a;
  a.mov(r0, r5);  // r5 never written
  a.exit();
  const auto res = verify_prog(a.finish());
  EXPECT_FALSE(res);
  EXPECT_NE(res.error.find("uninitialized"), std::string::npos);
}

TEST_F(VerifierTest, WriteToFramePointerRejected) {
  Assembler a;
  a.mov(r10, 0);
  a.mov(r0, 0);
  a.exit();
  const auto res = verify_prog(a.finish());
  EXPECT_FALSE(res);
  EXPECT_NE(res.error.find("frame pointer"), std::string::npos);
}

TEST_F(VerifierTest, ExitWithoutR0Rejected) {
  Assembler a;
  a.exit();
  EXPECT_FALSE(verify_prog(a.finish()));
}

TEST_F(VerifierTest, ExitWithPointerR0Rejected) {
  Assembler a;
  a.mov(r0, r10);
  a.exit();
  const auto res = verify_prog(a.finish());
  EXPECT_FALSE(res);
}

TEST_F(VerifierTest, DivByZeroImmediateRejected) {
  Assembler a;
  a.mov(r0, 10);
  a.div(r0, 0);
  a.exit();
  const auto res = verify_prog(a.finish());
  EXPECT_FALSE(res);
  EXPECT_NE(res.error.find("zero"), std::string::npos);
}

TEST_F(VerifierTest, StackAccessInBoundsAccepted) {
  Assembler a;
  a.mov(r2, 7);
  a.stx_dw(r10, -8, r2);
  a.ldx_dw(r0, r10, -8);
  a.exit();
  EXPECT_TRUE(verify_prog(a.finish()));
}

TEST_F(VerifierTest, StackOverflowRejected) {
  Assembler a;
  a.mov(r2, 7);
  a.stx_dw(r10, -520, r2);  // below the 512-byte frame
  a.mov(r0, 0);
  a.exit();
  EXPECT_FALSE(verify_prog(a.finish()));
}

TEST_F(VerifierTest, StackUnderflowRejected) {
  Assembler a;
  a.mov(r2, 7);
  a.stx_dw(r10, 0, r2);  // at/above r10
  a.mov(r0, 0);
  a.exit();
  EXPECT_FALSE(verify_prog(a.finish()));
}

TEST_F(VerifierTest, StackPointerArithmeticTracked) {
  Assembler a;
  a.mov(r2, r10);
  a.add(r2, -16);
  a.st_w(r2, 4, 1);  // [-16+4] = -12: fine
  a.mov(r0, 0);
  a.exit();
  EXPECT_TRUE(verify_prog(a.finish()));

  Assembler b;
  b.mov(r2, r10);
  b.add(r2, 16);     // points above the frame
  b.st_w(r2, 0, 1);
  b.mov(r0, 0);
  b.exit();
  EXPECT_FALSE(verify_prog(b.finish()));
}

TEST_F(VerifierTest, ContextReadAcceptedWriteRejected) {
  Assembler a;
  a.ldx_w(r0, r1, kCtxOffHash);
  a.exit();
  EXPECT_TRUE(verify_prog(a.finish()));

  Assembler b;
  b.mov(r2, 1);
  b.stx_w(r1, kCtxOffHash, r2);
  b.mov(r0, 0);
  b.exit();
  const auto res = verify_prog(b.finish());
  EXPECT_FALSE(res);
  EXPECT_NE(res.error.find("read-only"), std::string::npos);
}

TEST_F(VerifierTest, ContextOutOfBoundsReadRejected) {
  Assembler a;
  a.ldx_dw(r0, r1, static_cast<int32_t>(kCtxReadableBytes) - 4);
  a.exit();
  EXPECT_FALSE(verify_prog(a.finish()));
}

TEST_F(VerifierTest, MapLookupRequiresNullCheck) {
  Assembler a;
  a.st_w(r10, -4, 0);
  a.ld_map_fd(r1, 0);
  a.mov(r2, r10);
  a.add(r2, -4);
  a.call(HelperId::MapLookupElem);
  a.ldx_dw(r0, r0, 0);  // deref without null check
  a.exit();
  const auto res = verify_prog(a.finish());
  EXPECT_FALSE(res);
  EXPECT_NE(res.error.find("null"), std::string::npos);
}

TEST_F(VerifierTest, MapLookupWithNullCheckAccepted) {
  Assembler a;
  a.st_w(r10, -4, 0);
  a.ld_map_fd(r1, 0);
  a.mov(r2, r10);
  a.add(r2, -4);
  a.call(HelperId::MapLookupElem);
  a.jeq(r0, 0, "miss");
  a.ldx_dw(r0, r0, 0);
  a.exit();
  a.label("miss");
  a.mov(r0, 0);
  a.exit();
  const auto res = verify_prog(a.finish());
  EXPECT_TRUE(res) << res.error;
}

TEST_F(VerifierTest, MapValueOutOfBoundsRejected) {
  Assembler a;
  a.st_w(r10, -4, 0);
  a.ld_map_fd(r1, 0);
  a.mov(r2, r10);
  a.add(r2, -4);
  a.call(HelperId::MapLookupElem);
  a.jeq(r0, 0, "miss");
  a.ldx_dw(r0, r0, 8);  // value_size is 8: offset 8 overruns
  a.exit();
  a.label("miss");
  a.mov(r0, 0);
  a.exit();
  const auto res = verify_prog(a.finish());
  EXPECT_FALSE(res);
  EXPECT_NE(res.error.find("map value"), std::string::npos);
}

TEST_F(VerifierTest, UnknownMapSlotRejected) {
  Assembler a;
  a.ld_map_fd(r1, 9);
  a.mov(r0, 0);
  a.exit();
  EXPECT_FALSE(verify_prog(a.finish()));
}

TEST_F(VerifierTest, UnknownHelperRejected) {
  Program p = {
      {Op::Call, 0, 0, 0, 999},
      {Op::Exit},
  };
  EXPECT_FALSE(verify_prog(std::move(p)));
}

TEST_F(VerifierTest, HelperArgTypeMismatchRejected) {
  // MapLookupElem with a scalar instead of a map handle in r1.
  Assembler a;
  a.mov(r1, 0);
  a.mov(r2, r10);
  a.add(r2, -4);
  a.call(HelperId::MapLookupElem);
  a.mov(r0, 0);
  a.exit();
  EXPECT_FALSE(verify_prog(a.finish()));
}

TEST_F(VerifierTest, HelperWrongMapTypeRejected) {
  // SkSelectReuseport requires a sockarray; pass the array map instead.
  Assembler a;
  a.st_w(r10, -4, 0);
  a.mov(r3, r10);
  a.add(r3, -4);
  a.ld_map_fd(r2, 0);  // slot 0 = ArrayMap
  a.mov(r4, 0);
  a.call(HelperId::SkSelectReuseport);
  a.mov(r0, 0);
  a.exit();
  const auto res = verify_prog(a.finish());
  EXPECT_FALSE(res);
  EXPECT_NE(res.error.find("map type"), std::string::npos);
}

TEST_F(VerifierTest, CallClobbersCallerSavedRegs) {
  Assembler a;
  a.mov(r3, 5);
  a.call(HelperId::KtimeGetNs);
  a.mov(r0, r3);  // r3 was clobbered by the call
  a.exit();
  const auto res = verify_prog(a.finish());
  EXPECT_FALSE(res);
  EXPECT_NE(res.error.find("uninitialized"), std::string::npos);
}

TEST_F(VerifierTest, CalleeSavedRegsSurviveCall) {
  Assembler a;
  a.mov(r6, 5);
  a.call(HelperId::KtimeGetNs);
  a.mov(r0, r6);  // r6 survives
  a.exit();
  EXPECT_TRUE(verify_prog(a.finish()));
}

TEST_F(VerifierTest, PointerArithmeticWithRegisterRejected) {
  // Variable pointer offsets are legal now, but only when the range
  // analysis can bound them: an unknown offset still can't be accessed.
  Assembler a;
  a.call(HelperId::KtimeGetNs);  // r0: unbounded scalar
  a.mov(r3, r10);
  a.add(r3, r0);
  a.ldx_w(r2, r3, -8);
  a.mov(r0, 0);
  a.exit();
  const auto res = verify_prog(a.finish());
  EXPECT_FALSE(res);
  EXPECT_NE(res.error.find("stack access out of bounds"), std::string::npos);
}

TEST_F(VerifierTest, RangeProvenVariableStackAccessAccepted) {
  // Previously impossible under the constant-offset-only model: the
  // masked index keeps fp[-16 + 4i], i in [0,3], provably in-bounds.
  Assembler a;
  a.call(HelperId::GetPrandomU32);
  a.and_(r0, 3);
  a.lsh(r0, 2);
  a.mov(r3, r10);
  a.add(r3, -16);
  a.add(r3, r0);
  a.ldx_w(r2, r3, 0);
  a.mov(r0, 0);
  a.exit();
  const auto res = verify_prog(a.finish());
  EXPECT_TRUE(res) << res.error;
}

TEST_F(VerifierTest, RangeProvenVariableMapValueAccessAccepted) {
  Assembler a;
  a.st_w(r10, -4, 0);
  a.mov(r2, r10);
  a.add(r2, -4);
  a.ld_map_fd(r1, 0);
  a.call(HelperId::MapLookupElem);
  a.jeq(r0, 0, "out");
  a.ldx_w(r3, r0, 0);
  a.and_(r3, 7);  // value_size is 8: offsets [0,7] for a byte read
  a.mov(r4, r0);
  a.add(r4, r3);
  a.ldx_b(r5, r4, 0);
  a.label("out");
  a.mov(r0, 0);
  a.exit();
  const auto res = verify_prog(a.finish());
  EXPECT_TRUE(res) << res.error;
}

TEST_F(VerifierTest, DeadBranchIsPrunedNotVerified) {
  // The taken edge is infeasible (r0 == 3 can't be > 5); the code behind
  // it would be invalid but is never abstractly reached.
  Assembler a;
  a.mov(r0, 3);
  a.jgt(r0, 5, "bad");
  a.mov(r0, 0);
  a.exit();
  a.label("bad");
  a.ldx_w(r2, r10, 0);  // out-of-bounds if it were live
  a.exit();
  const auto res = verify_prog(a.finish());
  EXPECT_TRUE(res) << res.error;
  EXPECT_GE(res.dead_edges, 1u);
  EXPECT_EQ(res.dead_insns, 2u);
}

TEST_F(VerifierTest, SpilledScalarRangeRoundTrips) {
  // A bounded scalar keeps its range through a stack spill/fill, so it
  // can still prove a variable access after a helper clobbers r0.
  Assembler a;
  a.call(HelperId::GetPrandomU32);
  a.and_(r0, 7);
  a.stx_dw(r10, -8, r0);
  a.call(HelperId::KtimeGetNs);
  a.ldx_dw(r3, r10, -8);  // fill: range [0,7] restored
  a.mov(r2, r10);
  a.add(r2, -8);
  a.add(r2, r3);
  a.ldx_b(r4, r2, 0);  // fp-8 .. fp-1: in-bounds
  a.mov(r0, 0);
  a.exit();
  const auto res = verify_prog(a.finish());
  EXPECT_TRUE(res) << res.error;
}

TEST_F(VerifierTest, HelperContextArgMustBeContextBase) {
  // The VM hands r1 to sk_select_reuseport as the raw context pointer;
  // anything but the context base would misinterpret memory.
  Assembler a;
  a.st_w(r10, -4, 0);
  a.mov(r3, r10);
  a.add(r3, -4);
  a.ld_map_fd(r2, 1);
  a.add(r1, 8);
  a.mov(r4, 0);
  a.call(HelperId::SkSelectReuseport);
  a.mov(r0, 0);
  a.exit();
  const auto res = verify_prog(a.finish());
  EXPECT_FALSE(res);
  EXPECT_NE(res.error.find("context base"), std::string::npos);
}

TEST_F(VerifierTest, HelperUpdateValueMustCoverValueSize) {
  // map_update_elem reads value_size (8) bytes from r3; a pointer with
  // only 4 bytes of stack behind it would trap in the VM.
  Assembler a;
  a.st_w(r10, -4, 0);
  a.mov(r2, r10);
  a.add(r2, -4);
  a.mov(r3, r10);
  a.add(r3, -4);
  a.ld_map_fd(r1, 0);
  a.mov(r4, 0);
  a.call(HelperId::MapUpdateElem);
  a.mov(r0, 0);
  a.exit();
  const auto res = verify_prog(a.finish());
  EXPECT_FALSE(res);
  EXPECT_NE(res.error.find("stack access out of bounds"), std::string::npos);
}

TEST_F(VerifierTest, PointerComparisonWithImmediateRejected) {
  Assembler a;
  a.jgt(r1, 5, "x");  // r1 is ctx pointer
  a.label("x");
  a.mov(r0, 0);
  a.exit();
  EXPECT_FALSE(verify_prog(a.finish()));
}

TEST_F(VerifierTest, BranchMergeLosesMismatchedTypes) {
  // r2 is a stack pointer on one path and a scalar on the other; using it
  // as a pointer after the merge must be rejected.
  Assembler a;
  a.ldx_w(r3, r1, kCtxOffHash);
  a.mov(r2, r10);
  a.jeq(r3, 0, "join_scalar");
  a.ja("join");
  a.label("join_scalar");
  a.mov(r2, 4);
  a.label("join");
  a.ldx_dw(r0, r2, -8);  // r2 type is the meet: unusable
  a.exit();
  const auto res = verify_prog(a.finish());
  EXPECT_FALSE(res);
}

TEST_F(VerifierTest, ErrorReportsPcAndDisassembly) {
  Assembler a;
  a.mov(r0, r5);
  a.exit();
  const auto res = verify_prog(a.finish());
  ASSERT_FALSE(res);
  EXPECT_EQ(res.error_pc, 0u);
  EXPECT_NE(res.error.find("pc 0"), std::string::npos);
  EXPECT_NE(res.error.find("mov"), std::string::npos);
}

}  // namespace
}  // namespace hermes::bpf
