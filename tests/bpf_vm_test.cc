// VM interpreter semantics: ALU ops, memory, jumps, helpers, maps.
#include <gtest/gtest.h>

#include <memory>

#include "bpf/assembler.h"
#include "bpf/maps.h"
#include "bpf/vm.h"
#include "simcore/rng.h"

namespace hermes::bpf {
namespace {

class VmTest : public ::testing::Test {
 protected:
  uint64_t run(Assembler& a, std::vector<Map*> maps = {}) {
    std::string err;
    auto prog = vm_.load(a.finish(), std::move(maps), &err);
    EXPECT_NE(prog, nullptr) << err;
    if (!prog) return ~0ull;
    ReuseportCtx ctx;
    ctx.hash = 0xdeadbeef;
    return vm_.run(*prog, ctx).ret;
  }

  Vm vm_;
};

TEST_F(VmTest, MovAndExit) {
  Assembler a;
  a.mov(r0, 42);
  a.exit();
  EXPECT_EQ(run(a), 42u);
}

TEST_F(VmTest, Arithmetic64) {
  Assembler a;
  a.mov(r1, 1000);
  a.mov(r2, 7);
  a.mov(r0, r1);
  a.mul(r0, r2);   // 7000
  a.add(r0, 11);   // 7011
  a.sub(r0, r2);   // 7004
  a.div(r0, 2);    // 3502
  a.mod(r0, 100);  // 2
  a.exit();
  EXPECT_EQ(run(a), 2u);
}

TEST_F(VmTest, UnsignedDivModSemantics) {
  Assembler a;
  a.mov(r0, -8);   // 2^64 - 8 as unsigned
  a.div(r0, 2);
  a.exit();
  EXPECT_EQ(run(a), (~0ull - 7) / 2);
}

TEST_F(VmTest, DivByZeroRegisterYieldsZero) {
  Assembler a;
  a.mov(r0, 100);
  a.mov(r1, 0);
  a.div(r0, r1);
  a.exit();
  EXPECT_EQ(run(a), 0u);  // modern eBPF: div by 0 -> 0
}

TEST_F(VmTest, ModByZeroRegisterKeepsDst) {
  Assembler a;
  a.mov(r0, 100);
  a.mov(r1, 0);
  a.mod(r0, r1);
  a.exit();
  EXPECT_EQ(run(a), 100u);  // modern eBPF: mod by 0 -> dst unchanged
}

TEST_F(VmTest, BitwiseOps) {
  Assembler a;
  a.mov(r0, 0b1100);
  a.and_(r0, 0b1010);  // 0b1000
  a.or_(r0, 0b0001);   // 0b1001
  a.xor_(r0, 0b1111);  // 0b0110
  a.exit();
  EXPECT_EQ(run(a), 0b0110u);
}

TEST_F(VmTest, Shifts) {
  Assembler a;
  a.mov(r0, 1);
  a.lsh(r0, 40);
  a.rsh(r0, 8);
  a.exit();
  EXPECT_EQ(run(a), 1ull << 32);
}

TEST_F(VmTest, ArithmeticShiftSignExtends) {
  Assembler a;
  a.mov(r0, -16);
  a.arsh(r0, 2);
  a.exit();
  EXPECT_EQ(static_cast<int64_t>(run(a)), -4);
}

TEST_F(VmTest, NegWraps) {
  Assembler a;
  a.mov(r0, 5);
  a.neg(r0);
  a.exit();
  EXPECT_EQ(run(a), static_cast<uint64_t>(-5));
}

TEST_F(VmTest, Mov32ZeroExtends) {
  Assembler a;
  a.ld_imm64(r1, 0xaaaaBBBBccccDDDDull);
  a.mov(r0, r1);
  a.mov32(r0, r0);
  a.exit();
  EXPECT_EQ(run(a), 0xccccDDDDull);
}

TEST_F(VmTest, LdImm64FullWidth) {
  Assembler a;
  a.ld_imm64(r0, 0x0102030405060708ull);
  a.exit();
  EXPECT_EQ(run(a), 0x0102030405060708ull);
}

TEST_F(VmTest, StackStoreLoadRoundTripAllSizes) {
  Assembler a;
  a.ld_imm64(r2, 0x1122334455667788ull);
  a.stx_dw(r10, -8, r2);
  a.ldx_b(r3, r10, -8);   // LE low byte
  a.ldx_h(r4, r10, -8);
  a.ldx_w(r5, r10, -8);
  a.ldx_dw(r0, r10, -8);
  // r0 == full, verify partials via arithmetic: r0 ^= expected parts
  a.xor_(r0, r2);         // 0 if full load matched
  a.mov(r1, r3);
  a.xor_(r1, 0x88);
  a.or_(r0, r1);
  a.mov(r1, r4);
  a.xor_(r1, 0x7788);
  a.or_(r0, r1);
  a.mov(r1, r5);
  a.ld_imm64(r6, 0x55667788ull);
  a.xor_(r1, r6);
  a.or_(r0, r1);
  a.exit();
  EXPECT_EQ(run(a), 0u);  // all partial loads matched little-endian slices
}

TEST_F(VmTest, StoreImmediateForms) {
  Assembler a;
  a.st_w(r10, -4, 77);
  a.ldx_w(r0, r10, -4);
  a.exit();
  EXPECT_EQ(run(a), 77u);
}

TEST_F(VmTest, StackIsZeroedEachRun) {
  Assembler a;
  a.ldx_dw(r0, r10, -64);
  a.exit();
  std::string err;
  auto prog = vm_.load(a.finish(), {}, &err);
  ASSERT_NE(prog, nullptr) << err;
  ReuseportCtx ctx;
  EXPECT_EQ(vm_.run(*prog, ctx).ret, 0u);
  EXPECT_EQ(vm_.run(*prog, ctx).ret, 0u);
}

TEST_F(VmTest, ConditionalJumpsUnsigned) {
  // r0 = (0xffffffffffffffff > 1) ? 1 : 2 using unsigned compare
  Assembler a;
  a.mov(r1, -1);
  a.jgt(r1, 1, "big");
  a.mov(r0, 2);
  a.exit();
  a.label("big");
  a.mov(r0, 1);
  a.exit();
  EXPECT_EQ(run(a), 1u);  // unsigned: ~0 > 1
}

TEST_F(VmTest, ConditionalJumpsSignedViaProgram) {
  Program p = {
      {Op::MovImm, 1, 0, 0, -1},
      {Op::JsgtImm, 1, 0, /*off=*/2, 1},  // signed -1 > 1 ? no
      {Op::MovImm, 0, 0, 0, 7},
      {Op::Exit},
      {Op::MovImm, 0, 0, 0, 8},
      {Op::Exit},
  };
  std::string err;
  auto prog = vm_.load(std::move(p), {}, &err);
  ASSERT_NE(prog, nullptr) << err;
  ReuseportCtx ctx;
  EXPECT_EQ(vm_.run(*prog, ctx).ret, 7u);
}

TEST_F(VmTest, JsetTestsBits) {
  Assembler a;
  a.mov(r1, 0b1010);
  a.jset(r1, 0b0010, "has");
  a.mov(r0, 0);
  a.exit();
  a.label("has");
  a.mov(r0, 1);
  a.exit();
  EXPECT_EQ(run(a), 1u);
}

TEST_F(VmTest, ContextHashReadable) {
  Assembler a;
  a.ldx_w(r0, r1, kCtxOffHash);
  a.exit();
  EXPECT_EQ(run(a), 0xdeadbeefu);
}

TEST_F(VmTest, ArrayMapLookupAndReadThroughPointer) {
  ArrayMap map(4, 8);
  const uint64_t v = 0x1234567890abcdefull;
  ASSERT_TRUE(map.update(2, &v));

  Assembler a;
  a.st_w(r10, -4, 2);  // key = 2
  a.ld_map_fd(r1, 0);
  a.mov(r2, r10);
  a.add(r2, -4);
  a.call(HelperId::MapLookupElem);
  a.jeq(r0, 0, "miss");
  a.ldx_dw(r0, r0, 0);
  a.exit();
  a.label("miss");
  a.mov(r0, 0);
  a.exit();
  EXPECT_EQ(run(a, {&map}), v);
}

TEST_F(VmTest, ArrayMapOutOfRangeKeyReturnsNull) {
  ArrayMap map(4, 8);
  Assembler a;
  a.st_w(r10, -4, 99);  // out of range
  a.ld_map_fd(r1, 0);
  a.mov(r2, r10);
  a.add(r2, -4);
  a.call(HelperId::MapLookupElem);
  a.jeq(r0, 0, "miss");
  a.ldx_dw(r0, r0, 0);
  a.exit();
  a.label("miss");
  a.mov(r0, 12345);
  a.exit();
  EXPECT_EQ(run(a, {&map}), 12345u);
}

TEST_F(VmTest, SkSelectReuseportRecordsCookie) {
  ArrayMap sel(1, 8);
  ReuseportSockArray socks(8);
  ASSERT_TRUE(socks.update(3, /*cookie=*/777));

  Assembler a;
  a.st_w(r10, -4, 3);
  a.mov(r1, r1);  // keep ctx in r1 (already there)
  a.ld_map_fd(r2, 1);
  a.mov(r3, r10);
  a.add(r3, -4);
  a.mov(r4, 0);
  a.call(HelperId::SkSelectReuseport);
  a.exit();  // r0 = helper result (0 on success)

  std::string err;
  auto prog = vm_.load(a.finish(), {&sel, &socks}, &err);
  ASSERT_NE(prog, nullptr) << err;
  ReuseportCtx ctx;
  const auto res = vm_.run(*prog, ctx);
  EXPECT_EQ(res.ret, 0u);
  EXPECT_TRUE(ctx.selection_made);
  EXPECT_EQ(ctx.selected_socket, 777u);
}

TEST_F(VmTest, SkSelectReuseportEmptySlotFails) {
  ArrayMap sel(1, 8);
  ReuseportSockArray socks(8);  // slot 3 not populated

  Assembler a;
  a.st_w(r10, -4, 3);
  a.ld_map_fd(r2, 1);
  a.mov(r3, r10);
  a.add(r3, -4);
  a.mov(r4, 0);
  a.call(HelperId::SkSelectReuseport);
  a.exit();

  std::string err;
  auto prog = vm_.load(a.finish(), {&sel, &socks}, &err);
  ASSERT_NE(prog, nullptr) << err;
  ReuseportCtx ctx;
  const auto res = vm_.run(*prog, ctx);
  EXPECT_NE(res.ret, 0u);
  EXPECT_FALSE(ctx.selection_made);
}

TEST_F(VmTest, KtimeHelperUsesInjectedClock) {
  vm_.set_time_fn([] { return 123456789ull; });
  Assembler a;
  a.call(HelperId::KtimeGetNs);
  a.exit();
  EXPECT_EQ(run(a), 123456789ull);
}

TEST_F(VmTest, PrandomHelper) {
  uint32_t next = 7;
  vm_.set_rand_fn([&] { return next++; });
  Assembler a;
  a.call(HelperId::GetPrandomU32);
  a.exit();
  EXPECT_EQ(run(a), 7u);
}

TEST_F(VmTest, InsnCountingAccumulates) {
  Assembler a;
  a.mov(r0, 0);
  a.add(r0, 1);
  a.exit();
  std::string err;
  auto prog = vm_.load(a.finish(), {}, &err);
  ASSERT_NE(prog, nullptr);
  ReuseportCtx ctx;
  const auto r1_ = vm_.run(*prog, ctx);
  EXPECT_EQ(r1_.insns_executed, 3u);
  vm_.run(*prog, ctx);
  EXPECT_EQ(vm_.total_insns(), 6u);
}

TEST_F(VmTest, MapUpdateHelperWritesArray) {
  ArrayMap map(2, 8);
  Assembler a;
  a.st_w(r10, -4, 1);                  // key = 1
  a.ld_imm64(r2, 0xfeedfacecafef00dull);
  a.stx_dw(r10, -16, r2);              // value on stack
  a.ld_map_fd(r1, 0);
  a.mov(r2, r10);
  a.add(r2, -4);
  a.mov(r3, r10);
  a.add(r3, -16);
  a.mov(r4, 0);
  a.call(HelperId::MapUpdateElem);
  a.exit();
  EXPECT_EQ(run(a, {&map}), 0u);
  uint64_t out = 0;
  ASSERT_TRUE(map.read(1, &out));
  EXPECT_EQ(out, 0xfeedfacecafef00dull);
}

// Parameterized ALU sweep: random operand pairs, each op checked against
// the host CPU's semantics.
struct AluCase {
  Op op;
  const char* name;
  uint64_t (*eval)(uint64_t, uint64_t);
};

class VmAluSweep : public ::testing::TestWithParam<AluCase> {};

TEST_P(VmAluSweep, MatchesHostSemantics) {
  const AluCase& c = GetParam();
  Vm vm;
  sim::Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    uint64_t x = rng.next_u64();
    uint64_t y = rng.next_u64();
    if (i % 3 == 0) y &= 0xff;  // exercise small operands too
    Program p = {
        {Op::LdImm64, 1, 0, 0, static_cast<int64_t>(x)},
        {Op::LdImm64, 2, 0, 0, static_cast<int64_t>(y)},
        {Op::MovReg, 0, 1, 0, 0},
        {c.op, 0, 2, 0, 0},
        {Op::Exit},
    };
    std::string err;
    auto prog = vm.load(std::move(p), {}, &err);
    ASSERT_NE(prog, nullptr) << err;
    ReuseportCtx ctx;
    ASSERT_EQ(vm.run(*prog, ctx).ret, c.eval(x, y))
        << c.name << " x=" << x << " y=" << y;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, VmAluSweep,
    ::testing::Values(
        AluCase{Op::AddReg, "add", [](uint64_t x, uint64_t y) { return x + y; }},
        AluCase{Op::SubReg, "sub", [](uint64_t x, uint64_t y) { return x - y; }},
        AluCase{Op::MulReg, "mul", [](uint64_t x, uint64_t y) { return x * y; }},
        AluCase{Op::DivReg, "div",
                [](uint64_t x, uint64_t y) { return y ? x / y : 0; }},
        AluCase{Op::ModReg, "mod",
                [](uint64_t x, uint64_t y) { return y ? x % y : x; }},
        AluCase{Op::AndReg, "and", [](uint64_t x, uint64_t y) { return x & y; }},
        AluCase{Op::OrReg, "or", [](uint64_t x, uint64_t y) { return x | y; }},
        AluCase{Op::XorReg, "xor", [](uint64_t x, uint64_t y) { return x ^ y; }},
        AluCase{Op::LshReg, "lsh",
                [](uint64_t x, uint64_t y) { return x << (y & 63); }},
        AluCase{Op::RshReg, "rsh",
                [](uint64_t x, uint64_t y) { return x >> (y & 63); }},
        AluCase{Op::ArshReg, "arsh",
                [](uint64_t x, uint64_t y) {
                  return static_cast<uint64_t>(static_cast<int64_t>(x) >>
                                               (y & 63));
                }}),
    [](const ::testing::TestParamInfo<AluCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace hermes::bpf
