// Property tests for the SoA connection arena: slot reuse, generation-tag
// use-after-free protection, chunk growth, and live-set iteration.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "netsim/conn_slab.h"

namespace hermes::netsim {
namespace {

FourTuple tuple_of(uint32_t saddr, uint16_t sport) {
  FourTuple t;
  t.saddr = saddr;
  t.daddr = 0x0a000001;
  t.sport = sport;
  t.dport = 80;
  return t;
}

TEST(ConnSlabTest, CreateInitializesRow) {
  ConnSlab slab;
  const Connection c =
      slab.create(42, tuple_of(7, 1234), 80, 3, SimTime::millis(5));
  ASSERT_TRUE(c.valid());
  EXPECT_EQ(c.id(), 42u);
  EXPECT_EQ(c.tuple().saddr, 7u);
  EXPECT_EQ(c.port(), 80);
  EXPECT_EQ(c.tenant(), 3u);
  EXPECT_EQ(c.state(), ConnState::Queued);
  EXPECT_EQ(c.owner(), kInvalidWorker);
  EXPECT_EQ(c.created_at(), SimTime::millis(5));
  EXPECT_EQ(slab.live(), 1u);
}

TEST(ConnSlabTest, DefaultViewIsInvalid) {
  const Connection c;
  EXPECT_FALSE(c.valid());
  EXPECT_FALSE(static_cast<bool>(c));
}

TEST(ConnSlabTest, DestroyInvalidatesEveryOutstandingView) {
  ConnSlab slab;
  const Connection c = slab.create(1, tuple_of(1, 1), 80, 0, SimTime::zero());
  const Connection copy = c;  // views are values; copies alias the same row
  slab.destroy(c);
  EXPECT_EQ(slab.live(), 0u);
  EXPECT_FALSE(c.valid());
  EXPECT_FALSE(copy.valid());
}

TEST(ConnSlabTest, SlotReuseBumpsGenerationAndKillsStaleViews) {
  ConnSlab slab;
  const Connection old_conn =
      slab.create(1, tuple_of(1, 1), 80, 0, SimTime::zero());
  const uint32_t slot = old_conn.slot();
  slab.destroy(old_conn);

  // LIFO free list: the next create reuses the same row.
  const Connection new_conn =
      slab.create(2, tuple_of(2, 2), 81, 1, SimTime::millis(1));
  ASSERT_EQ(new_conn.slot(), slot);
  EXPECT_TRUE(new_conn.valid());
  EXPECT_FALSE(old_conn.valid());       // stale view cannot see the new row
  EXPECT_NE(old_conn, new_conn);        // gen differs even with equal slot
  EXPECT_EQ(new_conn.id(), 2u);
}

#ifndef NDEBUG
TEST(ConnSlabDeathTest, StaleViewAccessAborts) {
  // The generation check is the use-after-free guard: reading through a
  // view of a destroyed connection aborts in debug/sanitizer builds.
  ConnSlab slab;
  const Connection c = slab.create(1, tuple_of(1, 1), 80, 0, SimTime::zero());
  slab.destroy(c);
  slab.create(2, tuple_of(2, 2), 80, 0, SimTime::zero());  // reuses the slot
  EXPECT_DEATH({ (void)c.id(); }, "valid");
  EXPECT_DEATH({ c.set_owner(3); }, "valid");
}
#endif

TEST(ConnSlabDeathTest, DoubleDestroyAborts) {
  ConnSlab slab;
  const Connection c = slab.create(1, tuple_of(1, 1), 80, 0, SimTime::zero());
  slab.destroy(c);
  EXPECT_DEATH(slab.destroy(c), "stale");
}

TEST(ConnSlabTest, GrowsAcrossChunksWithoutInvalidatingViews) {
  ConnSlab slab;
  const uint32_t n = ConnSlab::kChunkSlots + 100;  // forces a second chunk
  std::vector<Connection> conns;
  conns.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    conns.push_back(
        slab.create(i + 1, tuple_of(i, static_cast<uint16_t>(i)), 80,
                    i % 7, SimTime::zero()));
  }
  EXPECT_EQ(slab.live(), n);
  EXPECT_EQ(slab.chunk_count(), 2u);
  // Chunk growth must not move rows: early views still read their data.
  for (uint32_t i = 0; i < n; i += 4097) {
    ASSERT_TRUE(conns[i].valid());
    EXPECT_EQ(conns[i].id(), i + 1);
    EXPECT_EQ(conns[i].tuple().saddr, i);
  }
}

TEST(ConnSlabTest, ForEachLiveSkipsFreedRows) {
  ConnSlab slab;
  std::vector<Connection> conns;
  for (uint32_t i = 0; i < 100; ++i) {
    conns.push_back(slab.create(i, tuple_of(i, 1), 80, 0, SimTime::zero()));
  }
  for (uint32_t i = 0; i < 100; i += 2) slab.destroy(conns[i]);

  std::set<ConnId> seen;
  slab.for_each_live([&](Connection c) {
    EXPECT_TRUE(c.valid());
    seen.insert(c.id());
  });
  EXPECT_EQ(seen.size(), 50u);
  for (uint32_t i = 1; i < 100; i += 2) EXPECT_TRUE(seen.count(i));
  EXPECT_EQ(slab.live(), 50u);
}

TEST(ConnSlabTest, ChurnKeepsFootprintBounded) {
  // Open/close churn with a small steady-state live set must recycle rows
  // instead of growing the arena: used() stays at the high-water mark.
  ConnSlab slab;
  std::vector<Connection> live;
  uint64_t next_id = 1;
  uint64_t rng = 12345;
  for (int round = 0; round < 20000; ++round) {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    if ((rng >> 33) % 2 == 0 || live.size() < 8) {
      live.push_back(slab.create(next_id++, tuple_of(1, 1), 80, 0,
                                 SimTime::zero()));
    } else {
      const size_t pick = (rng >> 40) % live.size();
      slab.destroy(live[pick]);
      live[pick] = live.back();
      live.pop_back();
    }
  }
  EXPECT_EQ(slab.live(), live.size());
  EXPECT_LT(slab.used(), 200u);  // bounded by peak live count, not churn
  EXPECT_EQ(slab.chunk_count(), 1u);
}

}  // namespace
}  // namespace hermes::netsim
