// PolicyEndpoint: the Appendix-C HTTP control plane for live scheduler
// policy updates, driven through the real HTTP parser.
#include <gtest/gtest.h>

#include "core/control.h"
#include "test_util.h"

namespace hermes::core {
namespace {

class ControlTest : public ::testing::Test {
 protected:
  ControlTest() : scheduler_(HermesConfig{}), endpoint_(scheduler_) {}

  http::Response send(const std::string& wire) {
    http::RequestParser p;
    p.feed(wire);
    EXPECT_TRUE(p.has_request()) << wire;
    return endpoint_.handle(p.take());
  }

  Scheduler scheduler_;
  PolicyEndpoint endpoint_;
};

TEST_F(ControlTest, GetPolicyReturnsCurrentConfig) {
  const auto resp = send("GET /policy HTTP/1.1\r\n\r\n");
  EXPECT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("\"theta_ratio\":0.5"), std::string::npos);
  EXPECT_NE(resp.body.find("\"order\":\"time,conn,event\""),
            std::string::npos);
  EXPECT_NE(resp.body.find("\"hang_threshold_ms\":50"), std::string::npos);
}

TEST_F(ControlTest, SetTheta) {
  const auto resp = send("POST /policy/theta?value=1.25 HTTP/1.1\r\n\r\n");
  EXPECT_EQ(resp.status, 200);
  EXPECT_DOUBLE_EQ(scheduler_.config().theta_ratio, 1.25);
}

TEST_F(ControlTest, SetHangThreshold) {
  const auto resp = send("POST /policy/hang-ms?value=120 HTTP/1.1\r\n\r\n");
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(scheduler_.config().hang_threshold.ns(),
            SimTime::millis(120).ns());
}

TEST_F(ControlTest, SetOrderPermutation) {
  const auto resp =
      send("POST /policy/order?value=time,event,conn HTTP/1.1\r\n\r\n");
  EXPECT_EQ(resp.status, 200);
  const auto& cfg = scheduler_.config();
  EXPECT_EQ(cfg.num_stages, 3u);
  EXPECT_EQ(cfg.stage_order[0], FilterStage::Time);
  EXPECT_EQ(cfg.stage_order[1], FilterStage::PendingEvents);
  EXPECT_EQ(cfg.stage_order[2], FilterStage::Connections);
}

TEST_F(ControlTest, SetShorterCascade) {
  const auto resp = send("POST /policy/order?value=time HTTP/1.1\r\n\r\n");
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(scheduler_.config().num_stages, 1u);
}

TEST_F(ControlTest, SetDegradationFraction) {
  const auto resp =
      send("POST /policy/degradation?fraction=0.4 HTTP/1.1\r\n\r\n");
  EXPECT_EQ(resp.status, 200);
  EXPECT_DOUBLE_EQ(scheduler_.config().degradation_reset_fraction, 0.4);
}

TEST_F(ControlTest, RejectsBadValues) {
  EXPECT_EQ(send("POST /policy/theta?value=-1 HTTP/1.1\r\n\r\n").status, 400);
  EXPECT_EQ(send("POST /policy/theta?value=abc HTTP/1.1\r\n\r\n").status, 400);
  EXPECT_EQ(send("POST /policy/theta HTTP/1.1\r\n\r\n").status, 400);
  EXPECT_EQ(send("POST /policy/hang-ms?value=0 HTTP/1.1\r\n\r\n").status, 400);
  EXPECT_EQ(send("POST /policy/order?value=bogus HTTP/1.1\r\n\r\n").status,
            400);
  EXPECT_EQ(
      send("POST /policy/degradation?fraction=1.5 HTTP/1.1\r\n\r\n").status,
      400);
  // Config unchanged by the rejects.
  EXPECT_DOUBLE_EQ(scheduler_.config().theta_ratio, 0.5);
}

TEST_F(ControlTest, UnknownEndpoints404) {
  EXPECT_EQ(send("GET /nope HTTP/1.1\r\n\r\n").status, 404);
  EXPECT_EQ(send("POST /policy/nope?value=1 HTTP/1.1\r\n\r\n").status, 404);
  EXPECT_EQ(send("DELETE /policy HTTP/1.1\r\n\r\n").status, 404);
}

TEST_F(ControlTest, MultiKeyQueryStringParsed) {
  const auto resp =
      send("POST /policy/theta?other=9&value=0.75&x=1 HTTP/1.1\r\n\r\n");
  EXPECT_EQ(resp.status, 200);
  EXPECT_DOUBLE_EQ(scheduler_.config().theta_ratio, 0.75);
}

TEST_F(ControlTest, UpdatedPolicyTakesEffectOnNextSchedule) {
  // End-to-end: flip theta to 0 and verify the live scheduler narrows.
  auto buf = testing::wst_buffer(4);
  auto wst = WorkerStatusTable::init(buf.data(), 4);
  const SimTime now = SimTime::millis(1);
  for (WorkerId w = 0; w < 4; ++w) {
    wst.update_avail(w, now);
    wst.add_connections(w, w);  // 0,1,2,3
  }
  const auto before = scheduler_.schedule(wst, now);  // theta 0.5 -> 3 pass
  EXPECT_EQ(before.selected, 3u);
  send("POST /policy/theta?value=0 HTTP/1.1\r\n\r\n");
  const auto after = scheduler_.schedule(wst, now);  // theta 0 -> 2 pass
  EXPECT_EQ(after.selected, 2u);
}

TEST_F(ControlTest, AcceptsExactRangeBoundaries) {
  EXPECT_EQ(send("POST /policy/theta?value=0 HTTP/1.1\r\n\r\n").status, 200);
  EXPECT_EQ(send("POST /policy/theta?value=16 HTTP/1.1\r\n\r\n").status, 200);
  EXPECT_EQ(send("POST /policy/theta?value=16.5 HTTP/1.1\r\n\r\n").status,
            400);
  EXPECT_EQ(send("POST /policy/hang-ms?value=60000 HTTP/1.1\r\n\r\n").status,
            200);
  EXPECT_EQ(send("POST /policy/hang-ms?value=60001 HTTP/1.1\r\n\r\n").status,
            400);
  EXPECT_EQ(
      send("POST /policy/degradation?fraction=1 HTTP/1.1\r\n\r\n").status,
      200);
  EXPECT_EQ(
      send("POST /policy/degradation?fraction=0 HTTP/1.1\r\n\r\n").status,
      200);
}

TEST_F(ControlTest, OrderRejectsEmptyAndPartialTokens) {
  EXPECT_EQ(send("POST /policy/order?value= HTTP/1.1\r\n\r\n").status, 400);
  EXPECT_EQ(send("POST /policy/order?value=conn,bogus HTTP/1.1\r\n\r\n").status,
            400);
  // A rejected order never changes the cascade length.
  EXPECT_EQ(scheduler_.config().num_stages, 3u);
}

TEST_F(ControlTest, DescribeRoundTripsThroughOrderEndpoint) {
  // Set a two-stage cascade, read it back via GET, and feed the reported
  // order string into the endpoint again: a full round trip must be a
  // fixed point.
  ASSERT_EQ(send("POST /policy/order?value=event,conn HTTP/1.1\r\n\r\n").status,
            200);
  const auto get = send("GET /policy HTTP/1.1\r\n\r\n");
  EXPECT_NE(get.body.find("\"order\":\"event,conn\""), std::string::npos);

  ASSERT_EQ(send("POST /policy/order?value=event,conn HTTP/1.1\r\n\r\n").status,
            200);
  const auto& cfg = scheduler_.config();
  EXPECT_EQ(cfg.num_stages, 2u);
  EXPECT_EQ(cfg.stage_order[0], FilterStage::PendingEvents);
  EXPECT_EQ(cfg.stage_order[1], FilterStage::Connections);
  EXPECT_NE(send("GET /policy HTTP/1.1\r\n\r\n")
                .body.find("\"order\":\"event,conn\""),
            std::string::npos);
}

}  // namespace
}  // namespace hermes::core
