// The L7 byte-level data plane inside the LB simulation: zero-copy vs
// copy-oracle differential (bit-identical streams), backend connection
// pool reuse across keep-alive requests, rate-limited admission, and
// fleet-level aggregation.
#include <gtest/gtest.h>

#include "sim/fleet.h"
#include "sim/lb.h"

namespace hermes::sim {
namespace {

LbDevice::Config dp_config(bool zero_copy, uint64_t seed = 1) {
  LbDevice::Config cfg;
  cfg.mode = netsim::DispatchMode::HermesMode;
  cfg.num_workers = 4;
  cfg.num_ports = 4;
  cfg.seed = seed;
  cfg.data_plane.enabled = true;
  cfg.data_plane.zero_copy = zero_copy;
  return cfg;
}

void run_keepalive_mix(LbDevice& lb) {
  LbDevice::ConnPlan plan;
  plan.remaining = 8;  // keep-alive: 8 requests per connection
  plan.cost_us = DistSpec::constant(100);
  plan.gap_us = DistSpec::constant(500);
  plan.bytes = DistSpec::constant(700);
  for (int i = 0; i < 16; ++i) {
    lb.eq().schedule_at(SimTime::millis(i), [&lb, plan, i] {
      LbDevice::ConnPlan p = plan;
      p.tenant = static_cast<TenantId>(i % 4);
      lb.open_connection(p.tenant, p);
    });
  }
  lb.eq().run_until(SimTime::seconds(1));
}

TEST(DataPlaneTest, DisabledByDefault) {
  LbDevice::Config cfg;
  cfg.num_workers = 2;
  cfg.num_ports = 2;
  LbDevice lb(cfg);
  EXPECT_EQ(lb.data_plane(), nullptr);
  EXPECT_EQ(lb.rate_limiter(), nullptr);
}

TEST(DataPlaneTest, ForwardsEveryCompletedRequest) {
  LbDevice lb(dp_config(/*zero_copy=*/true));
  run_keepalive_mix(lb);
  ASSERT_NE(lb.data_plane(), nullptr);
  const DataPlane::Totals& t = lb.data_plane()->totals();
  EXPECT_EQ(lb.totals().requests_completed, 16u * 8u);
  EXPECT_EQ(t.requests_forwarded, lb.totals().requests_completed);
  EXPECT_EQ(t.responses_returned, t.requests_forwarded);
  EXPECT_EQ(t.parse_errors, 0u);
  EXPECT_GT(t.bytes_in, 0u);
  EXPECT_GT(t.bytes_out, 0u);
  // Zero-copy mode: the proxy path memcpy'd nothing.
  EXPECT_EQ(t.bytes_copied, 0u);
  EXPECT_GT(t.bytes_zero_copied, 0u);
  // All connections closed → no ConnState leaks.
  EXPECT_EQ(lb.data_plane()->live_conn_states(), 0u);
}

TEST(DataPlaneTest, ZeroCopyAndOracleStreamsAreBitIdentical) {
  LbDevice zc(dp_config(/*zero_copy=*/true));
  LbDevice oracle(dp_config(/*zero_copy=*/false));
  run_keepalive_mix(zc);
  run_keepalive_mix(oracle);

  const DataPlane::Totals& a = zc.data_plane()->totals();
  const DataPlane::Totals& b = oracle.data_plane()->totals();
  // Same seed, same plan, and zero_copy changes no event timing → the
  // exact same requests flowed, in the same completion order.
  ASSERT_EQ(a.requests_forwarded, b.requests_forwarded);
  EXPECT_EQ(a.bytes_in, b.bytes_in);
  EXPECT_EQ(a.bytes_out, b.bytes_out);
  // The differential oracle: chained hashes over both directions match
  // bit for bit, while the byte-movement accounting is opposite.
  EXPECT_EQ(a.backend_stream_hash, b.backend_stream_hash);
  EXPECT_EQ(a.client_stream_hash, b.client_stream_hash);
  EXPECT_EQ(a.bytes_copied, 0u);
  EXPECT_EQ(b.bytes_zero_copied, 0u);
  EXPECT_GT(b.bytes_copied, 0u);
  EXPECT_EQ(a.bytes_zero_copied, b.bytes_copied);
}

TEST(DataPlaneTest, PerByteCostScalesServiceTimeWithBodySize) {
  // Body-size-dependent service costs: on_request charges exactly
  // per_byte_cost * Request::bytes on top of any handshake.
  DataPlane::Config dc;
  dc.enabled = true;
  dc.num_backends = 1;  // force the second request onto the warm conn
  dc.per_byte_cost = SimTime::nanos(100);
  DataPlane dp(dc, /*num_workers=*/2, /*obs=*/nullptr);
  Request req;
  req.id = 1;
  req.conn = 7;
  req.bytes = 700;
  // First request: pool miss (handshake) + the 700-byte bill.
  const SimTime first = dp.on_request(0, req, /*last_on_conn=*/false,
                                      SimTime::zero());
  EXPECT_EQ(first.ns(), dc.backend_handshake_cost.ns() + 700ll * 100);
  dp.on_response(0, req, SimTime::micros(10));
  // Second request reuses the warm backend: the byte bill alone remains.
  req.id = 2;
  req.bytes = 40;
  const SimTime second = dp.on_request(0, req, /*last_on_conn=*/true,
                                       SimTime::micros(20));
  EXPECT_EQ(second.ns(), 40ll * 100);

  // And the default stays free: byte counts alone never cost CPU.
  DataPlane::Config free_cfg;
  free_cfg.enabled = true;
  DataPlane free_dp(free_cfg, 2, nullptr);
  Request fr;
  fr.id = 3;
  fr.conn = 9;
  fr.bytes = 5000;
  const SimTime f =
      free_dp.on_request(0, fr, /*last_on_conn=*/true, SimTime::zero());
  EXPECT_EQ(f.ns(), free_cfg.backend_handshake_cost.ns());
}

TEST(DataPlaneTest, PoolReusesWarmBackendConnections) {
  LbDevice::Config cfg = dp_config(/*zero_copy=*/true);
  cfg.data_plane.num_backends = 1;  // every request hits the same backend
  LbDevice lb(cfg);
  run_keepalive_mix(lb);
  const DataPlane::Totals& t = lb.data_plane()->totals();
  EXPECT_EQ(t.pool_hits + t.pool_misses, t.requests_forwarded);
  // Sequential keep-alive requests on one backend: the first request per
  // idle period establishes, nearly everything after reuses.
  EXPECT_GT(t.pool_hits, t.pool_misses);
  EXPECT_GE(t.pool_misses, 1u);
}

TEST(DataPlaneTest, PoolExpiryReflectsIdleTimeout) {
  LbDevice::Config cfg = dp_config(/*zero_copy=*/true);
  cfg.data_plane.num_backends = 1;
  cfg.data_plane.pool.idle_expiry = SimTime::micros(100);  // aggressive
  LbDevice lb(cfg);
  run_keepalive_mix(lb);  // request gaps are 500µs > expiry
  const DataPlane::Totals& t = lb.data_plane()->totals();
  EXPECT_GT(t.pool_expiries, 0u);
  EXPECT_GT(t.pool_misses, t.pool_hits);  // warm conns keep dying
}

TEST(DataPlaneTest, RateLimiterRefusesAdmission) {
  LbDevice::Config cfg = dp_config(/*zero_copy=*/true);
  cfg.rate_limit.rate_per_sec = 10;
  cfg.rate_limit.burst = 4;
  cfg.rate_limit.buckets = 1;  // global bucket: deterministic drops
  LbDevice lb(cfg);
  ASSERT_NE(lb.rate_limiter(), nullptr);

  LbDevice::ConnPlan plan;
  plan.remaining = 1;
  plan.cost_us = DistSpec::constant(50);
  size_t opened = 0;
  for (int i = 0; i < 32; ++i) {
    if (lb.open_connection(0, plan) != 0) ++opened;
  }
  lb.eq().run_until(SimTime::millis(100));
  // Burst of 4 admitted instantly; 10/s refill adds ~1 more within the
  // same instant window — the rest are refused at admission.
  EXPECT_LE(opened, 5u);
  EXPECT_EQ(lb.totals().rate_limited, 32 - opened);
  EXPECT_EQ(lb.totals().rate_limited, lb.rate_limiter()->drops());
  EXPECT_EQ(lb.totals().requests_completed, opened);
  // Admission refusals are not connection drops (no backlog involved).
  EXPECT_EQ(lb.totals().conns_dropped, 0u);
}

TEST(DataPlaneTest, FleetAggregatesDataPlaneTotals) {
  Fleet::Config fcfg;
  fcfg.num_lbs = 3;
  fcfg.device = dp_config(/*zero_copy=*/true);
  fcfg.device.num_workers = 2;
  Fleet fleet(fcfg);

  LbDevice::ConnPlan plan;
  plan.remaining = 4;
  plan.cost_us = DistSpec::constant(100);
  plan.gap_us = DistSpec::constant(500);
  const size_t established = fleet.open_burst(0, plan, 64);
  ASSERT_GT(established, 0u);
  for (size_t i = 0; i < fleet.device_count(); ++i) {
    fleet.device(i).eq().run_until(SimTime::seconds(1));
  }

  const DataPlane::Totals agg = fleet.data_plane_totals();
  uint64_t fwd = 0, hash_xor = 0;
  for (size_t i = 0; i < fleet.device_count(); ++i) {
    const DataPlane* dp = fleet.device(i).data_plane();
    ASSERT_NE(dp, nullptr);
    fwd += dp->totals().requests_forwarded;
    hash_xor ^= dp->totals().backend_stream_hash;
  }
  EXPECT_EQ(agg.requests_forwarded, fwd);
  EXPECT_EQ(agg.requests_forwarded, established * 4u);
  EXPECT_EQ(agg.backend_stream_hash, hash_xor);
  EXPECT_EQ(agg.bytes_copied, 0u);
}

TEST(DataPlaneTest, ObservabilityCountersMirrorTotals) {
  LbDevice lb(dp_config(/*zero_copy=*/true));
  run_keepalive_mix(lb);
  const DataPlane::Totals& t = lb.data_plane()->totals();
  const obs::PipelineMetrics& m = lb.obs()->metrics;
  EXPECT_EQ(m.http_requests_forwarded->value(),
            static_cast<int64_t>(t.requests_forwarded));
  EXPECT_EQ(m.http_bytes_zero_copied->value(),
            static_cast<int64_t>(t.bytes_zero_copied));
  EXPECT_EQ(m.http_bytes_copied->value(), 0);
  EXPECT_EQ(m.pool_hits->value(), static_cast<int64_t>(t.pool_hits));
  EXPECT_EQ(m.pool_misses->value(), static_cast<int64_t>(t.pool_misses));
  EXPECT_EQ(m.ratelimit_drops->value(), 0);
}

}  // namespace
}  // namespace hermes::sim
