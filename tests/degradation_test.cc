// Proactive service degradation (Appendix C, exception case 1).
#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <vector>

#include "core/degradation.h"
#include "test_util.h"

namespace hermes::core {
namespace {

class DegradationTest : public ::testing::Test {
 protected:
  DegradationTest() : buf_(testing::wst_buffer(4)) {
    wst_.emplace(WorkerStatusTable::init(buf_.data(), 4));
  }

  testing::AlignedBuffer<64> buf_;
  std::optional<WorkerStatusTable> wst_;
  HermesConfig cfg_{};
};

TEST_F(DegradationTest, TriggersOnlyPastDeepHangThreshold) {
  DegradationPolicy pol(cfg_);
  wst_->update_avail(0, SimTime::zero());
  // Just hung (past scheduler threshold) but not degradation-deep:
  EXPECT_FALSE(pol.should_degrade(*wst_, 0, cfg_.hang_threshold * 2));
  // Past the degradation threshold:
  EXPECT_TRUE(pol.should_degrade(
      *wst_, 0, cfg_.degradation_after + SimTime::millis(1)));
}

TEST_F(DegradationTest, HealthyWorkerNeverDegraded) {
  DegradationPolicy pol(cfg_);
  const SimTime now = SimTime::seconds(10);
  wst_->update_avail(1, now - SimTime::millis(1));
  EXPECT_FALSE(pol.should_degrade(*wst_, 1, now));
}

TEST_F(DegradationTest, PickResetsApproximatesFraction) {
  cfg_.degradation_reset_fraction = 0.25;
  DegradationPolicy pol(cfg_);
  std::vector<uint64_t> conns(1000);
  std::iota(conns.begin(), conns.end(), 1);
  const auto resets = pol.pick_resets(conns);
  EXPECT_EQ(resets.size(), 250u);
  // All returned ids must be real members.
  const std::set<uint64_t> all(conns.begin(), conns.end());
  for (uint64_t id : resets) EXPECT_TRUE(all.count(id));
}

TEST_F(DegradationTest, SaltRotatesVictims) {
  cfg_.degradation_reset_fraction = 0.25;
  DegradationPolicy pol(cfg_);
  std::vector<uint64_t> conns(100);
  std::iota(conns.begin(), conns.end(), 0);
  const auto round0 = pol.pick_resets(conns, 0);
  const auto round1 = pol.pick_resets(conns, 1);
  EXPECT_EQ(round0.size(), round1.size());
  EXPECT_NE(round0, round1);  // different victims each round
}

TEST_F(DegradationTest, EmptyAndZeroFractionEdges) {
  cfg_.degradation_reset_fraction = 0.0;
  DegradationPolicy zero(cfg_);
  std::vector<uint64_t> conns = {1, 2, 3};
  EXPECT_TRUE(zero.pick_resets(conns).empty());

  cfg_.degradation_reset_fraction = 0.5;
  DegradationPolicy pol(cfg_);
  EXPECT_TRUE(pol.pick_resets({}).empty());
}

TEST_F(DegradationTest, FullFractionResetsEverything) {
  cfg_.degradation_reset_fraction = 1.0;
  DegradationPolicy pol(cfg_);
  std::vector<uint64_t> conns = {5, 6, 7, 8};
  EXPECT_EQ(pol.pick_resets(conns).size(), 4u);
}

TEST_F(DegradationTest, DeterministicForSameInputs) {
  DegradationPolicy pol(cfg_);
  std::vector<uint64_t> conns(64);
  std::iota(conns.begin(), conns.end(), 100);
  EXPECT_EQ(pol.pick_resets(conns, 3), pol.pick_resets(conns, 3));
}

TEST_F(DegradationTest, ShouldDegradeBoundaryIsStrict) {
  DegradationPolicy pol(cfg_);
  wst_->update_avail(2, SimTime::zero());
  // Staleness exactly == degradation_after is NOT yet degradation-worthy.
  EXPECT_FALSE(pol.should_degrade(*wst_, 2, cfg_.degradation_after));
  EXPECT_TRUE(pol.should_degrade(*wst_, 2,
                                 cfg_.degradation_after + SimTime::nanos(1)));
}

TEST_F(DegradationTest, TinyFractionSpreadsSparsely) {
  cfg_.degradation_reset_fraction = 0.01;  // stride 100
  DegradationPolicy pol(cfg_);
  std::vector<uint64_t> conns(1000);
  std::iota(conns.begin(), conns.end(), 0);
  EXPECT_EQ(pol.pick_resets(conns).size(), 10u);
}

TEST_F(DegradationTest, SaltWrapsModuloStride) {
  cfg_.degradation_reset_fraction = 0.25;  // stride 4
  DegradationPolicy pol(cfg_);
  std::vector<uint64_t> conns(40);
  std::iota(conns.begin(), conns.end(), 0);
  // Salts congruent mod stride pick the same victims.
  EXPECT_EQ(pol.pick_resets(conns, 1), pol.pick_resets(conns, 5));
}

}  // namespace
}  // namespace hermes::core
