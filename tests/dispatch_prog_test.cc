// The Hermes dispatch program (Algo. 2): verification, differential testing
// against the C++ reference, fallback behaviour, and group mode.
#include <gtest/gtest.h>

#include <memory>

#include "bpf/maps.h"
#include "bpf/vm.h"
#include "core/bitmap.h"
#include "core/dispatch_prog.h"
#include "simcore/rng.h"

namespace hermes::core {
namespace {

class DispatchProgTest : public ::testing::Test {
 protected:
  void build(const DispatchProgramParams& p, uint32_t num_workers) {
    params_ = p;
    sel_ = std::make_unique<bpf::ArrayMap>(p.num_groups, sizeof(uint64_t));
    socks_ = std::make_unique<bpf::ReuseportSockArray>(num_workers);
    for (uint32_t w = 0; w < num_workers; ++w) {
      ASSERT_TRUE(socks_->update(w, cookie_of(w)));
    }
    std::string err;
    prog_ = vm_.load(build_dispatch_program(p), {sel_.get(), socks_.get()},
                     &err);
    ASSERT_NE(prog_, nullptr) << err;
  }

  static uint64_t cookie_of(WorkerId w) { return 1000 + w; }

  void set_bitmap(uint32_t group, uint64_t bm) { sel_->store_u64(group, bm); }

  // Runs the program; returns selected worker or kInvalidWorker on fallback.
  WorkerId run(uint32_t hash, uint32_t hash2 = 0) {
    bpf::ReuseportCtx ctx;
    ctx.hash = hash;
    ctx.hash2 = hash2;
    const auto res = vm_.run(*prog_, ctx);
    if (res.ret == bpf::kRetUseSelection && ctx.selection_made) {
      return static_cast<WorkerId>(ctx.selected_socket - 1000);
    }
    EXPECT_EQ(res.ret, bpf::kRetFallback);
    return kInvalidWorker;
  }

  DispatchProgramParams params_;
  bpf::Vm vm_;
  std::unique_ptr<bpf::ArrayMap> sel_;
  std::unique_ptr<bpf::ReuseportSockArray> socks_;
  std::unique_ptr<bpf::LoadedProgram> prog_;
};

TEST_F(DispatchProgTest, PassesVerifier) {
  // build() already asserts load success (which includes verification) —
  // for every parameter combination we use below.
  build(DispatchProgramParams{}, 64);
  SUCCEED();
}

TEST_F(DispatchProgTest, ProgramSizeWithinKernelLimit) {
  const auto prog = build_dispatch_program(DispatchProgramParams{});
  EXPECT_LE(prog.size(), bpf::kMaxProgramLen);
  // Straight-line rank-select dominates; sanity-check it's nontrivial.
  EXPECT_GT(prog.size(), 100u);
}

TEST_F(DispatchProgTest, EmptyBitmapFallsBack) {
  build(DispatchProgramParams{}, 8);
  set_bitmap(0, 0);
  EXPECT_EQ(run(12345), kInvalidWorker);
}

TEST_F(DispatchProgTest, SingleWorkerFallsBack) {
  // Algo. 2: "if n > 1" — one selected worker is not enough.
  build(DispatchProgramParams{}, 8);
  set_bitmap(0, 0b100);
  EXPECT_EQ(run(12345), kInvalidWorker);
}

TEST_F(DispatchProgTest, MinWorkersOneSelectsTheSingleton) {
  DispatchProgramParams p;
  p.min_workers = 1;
  build(p, 8);
  set_bitmap(0, 0b100);
  EXPECT_EQ(run(99999), 2u);
}

TEST_F(DispatchProgTest, SelectsOnlyWorkersInBitmap) {
  build(DispatchProgramParams{}, 8);
  set_bitmap(0, 0b10110);  // workers 1, 2, 4
  sim::Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    const WorkerId w = run(static_cast<uint32_t>(rng.next_u64()));
    ASSERT_TRUE(w == 1 || w == 2 || w == 4) << w;
  }
}

TEST_F(DispatchProgTest, DistributesEvenlyAmongSelected) {
  build(DispatchProgramParams{}, 8);
  set_bitmap(0, 0b01101001);  // workers 0, 3, 5, 6
  sim::Rng rng(6);
  uint64_t counts[8] = {};
  constexpr int kSamples = 40000;
  for (int i = 0; i < kSamples; ++i) {
    ++counts[run(static_cast<uint32_t>(rng.next_u64()))];
  }
  for (WorkerId w : {0u, 3u, 5u, 6u}) {
    EXPECT_NEAR(static_cast<double>(counts[w]), kSamples / 4.0,
                kSamples / 4.0 * 0.1);
  }
}

TEST_F(DispatchProgTest, DifferentialAgainstReference) {
  build(DispatchProgramParams{}, 64);
  sim::Rng rng(7);
  for (int i = 0; i < 3000; ++i) {
    const uint64_t bm = rng.next_u64() & rng.next_u64();  // sparser bitmaps
    set_bitmap(0, bm);
    const auto hash = static_cast<uint32_t>(rng.next_u64());
    const WorkerId expect = reference_dispatch(params_, &bm, hash, 0);
    ASSERT_EQ(run(hash), expect) << "bm=" << bm << " hash=" << hash;
  }
}

TEST_F(DispatchProgTest, DeterministicPerHash) {
  // Same 4-tuple hash always selects the same worker for a fixed bitmap —
  // the consistency property reuseport users rely on.
  build(DispatchProgramParams{}, 16);
  set_bitmap(0, 0xf0f0);
  const WorkerId w = run(777777);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(run(777777), w);
}

TEST_F(DispatchProgTest, MissingSocketFallsBack) {
  // Bitmap names worker 7, but its sockarray slot is empty.
  DispatchProgramParams p;
  build(p, 8);
  ASSERT_TRUE(socks_->remove(7));
  set_bitmap(0, 0b10000000 | 0b1);  // workers 0 and 7
  sim::Rng rng(8);
  int fallbacks = 0, selected0 = 0;
  for (int i = 0; i < 1000; ++i) {
    const WorkerId w = run(static_cast<uint32_t>(rng.next_u64()));
    if (w == kInvalidWorker) {
      ++fallbacks;
    } else {
      EXPECT_EQ(w, 0u);
      ++selected0;
    }
  }
  EXPECT_GT(fallbacks, 0);
  EXPECT_GT(selected0, 0);
}

// ---- two-level group mode (paper §7, Appendix C Fig. A6) ----------------

class DispatchGroupTest : public DispatchProgTest {};

TEST_F(DispatchGroupTest, GroupModeVerifies) {
  DispatchProgramParams p;
  p.num_groups = 2;
  p.workers_per_group = 64;
  build(p, 128);
  SUCCEED();
}

TEST_F(DispatchGroupTest, 128WorkersSpanGroups) {
  DispatchProgramParams p;
  p.num_groups = 2;
  p.workers_per_group = 64;
  build(p, 128);
  set_bitmap(0, ~0ull);  // all of group 0
  set_bitmap(1, ~0ull);  // all of group 1
  sim::Rng rng(9);
  bool saw_low = false, saw_high = false;
  for (int i = 0; i < 2000; ++i) {
    const auto h = static_cast<uint32_t>(rng.next_u64());
    const auto h2 = static_cast<uint32_t>(rng.next_u64());
    const WorkerId w = run(h, h2);
    ASSERT_LT(w, 128u);
    (w < 64 ? saw_low : saw_high) = true;
  }
  EXPECT_TRUE(saw_low);
  EXPECT_TRUE(saw_high);
}

TEST_F(DispatchGroupTest, LocalityHashPinsGroup) {
  // Same hash2 (same DIP/Dport) must always land in the same group even as
  // the 4-tuple hash varies — the cache-locality property of Fig. A6.
  DispatchProgramParams p;
  p.num_groups = 4;
  p.workers_per_group = 8;
  build(p, 32);
  for (uint32_t g = 0; g < 4; ++g) set_bitmap(g, 0xff);
  sim::Rng rng(10);
  for (int dest = 0; dest < 20; ++dest) {
    const auto h2 = static_cast<uint32_t>(rng.next_u64());
    const uint32_t expected_group = reciprocal_scale_u32(h2, 4);
    for (int i = 0; i < 100; ++i) {
      const WorkerId w = run(static_cast<uint32_t>(rng.next_u64()), h2);
      ASSERT_EQ(w / 8, expected_group);
    }
  }
}

TEST_F(DispatchGroupTest, DifferentialAgainstReferenceGroups) {
  DispatchProgramParams p;
  p.num_groups = 4;
  p.workers_per_group = 16;
  build(p, 64);
  sim::Rng rng(11);
  for (int i = 0; i < 2000; ++i) {
    uint64_t bms[4];
    for (auto& bm : bms) {
      bm = rng.next_u64() & rng.next_u64() & 0xffff;  // 16-wide groups
      set_bitmap(static_cast<uint32_t>(&bm - bms), bm);
    }
    const auto hash = static_cast<uint32_t>(rng.next_u64());
    const auto hash2 = static_cast<uint32_t>(rng.next_u64());
    const WorkerId expect = reference_dispatch(p, bms, hash, hash2);
    ASSERT_EQ(run(hash, hash2), expect);
  }
}

TEST_F(DispatchGroupTest, PerGroupFallbackIndependent) {
  DispatchProgramParams p;
  p.num_groups = 2;
  p.workers_per_group = 4;
  build(p, 8);
  set_bitmap(0, 0b0011);  // group 0 healthy
  set_bitmap(1, 0b0000);  // group 1 empty -> fallback
  sim::Rng rng(12);
  int fallback = 0, dispatched = 0;
  for (int i = 0; i < 4000; ++i) {
    const auto h2 = static_cast<uint32_t>(rng.next_u64());
    const WorkerId w = run(static_cast<uint32_t>(rng.next_u64()), h2);
    const uint32_t group = reciprocal_scale_u32(h2, 2);
    if (group == 0) {
      ASSERT_TRUE(w == 0 || w == 1);
      ++dispatched;
    } else {
      ASSERT_EQ(w, kInvalidWorker);
      ++fallback;
    }
  }
  EXPECT_GT(fallback, 1000);
  EXPECT_GT(dispatched, 1000);
}

// Reference implementation sanity: dispatch spread matches reciprocal_scale.
TEST(ReferenceDispatchTest, RankMath) {
  DispatchProgramParams p;
  const uint64_t bm = 0b10110;  // workers 1, 2, 4; n = 3
  // hash = 0 -> nth = 1 -> first set bit -> worker 1
  EXPECT_EQ(reference_dispatch(p, &bm, 0, 0), 1u);
  // hash = max -> nth = 3 -> worker 4
  EXPECT_EQ(reference_dispatch(p, &bm, 0xffffffffu, 0), 4u);
}

}  // namespace
}  // namespace hermes::core
