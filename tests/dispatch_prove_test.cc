// Machine-checked proof of the dispatch program's key invariant (paper
// Algo. 2): the socket index handed to sk_select_reuseport is always
// < nr_socks, and the program returns use-selection or fallback — for
// every pool geometry Hermes supports, over *all* executions (any context
// hash, any bitmap contents including corrupt ones, any map state). The
// proof runs the abstract interpreter, so this is a build-time theorem,
// not a sampled test.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "bpf/analysis/prove.h"
#include "bpf/maps.h"
#include "core/dispatch_prog.h"
#include "core/policy.h"

namespace hermes::core {
namespace {

using bpf::ArrayMap;
using bpf::Map;
using bpf::ReuseportSockArray;
using bpf::analysis::DispatchProof;
using bpf::analysis::prove_dispatch;

DispatchProof prove_params(const DispatchProgramParams& p) {
  const uint64_t nr_socks =
      static_cast<uint64_t>(p.num_groups) * p.workers_per_group;
  ArrayMap sel(p.num_groups, /*value_size=*/8);
  ReuseportSockArray socks(static_cast<uint32_t>(nr_socks));
  std::vector<Map*> maps = {&sel, &socks};
  return prove_dispatch(build_dispatch_program(p), maps, nr_socks);
}

TEST(DispatchProveTest, SingleGroupAllPoolSizes) {
  // Every single-level geometry the paper's testbed uses: 1..64 workers.
  for (uint32_t w = 1; w <= 64; ++w) {
    DispatchProgramParams p;
    p.num_groups = 1;
    p.workers_per_group = w;
    p.min_workers = 1;
    const DispatchProof proof = prove_params(p);
    EXPECT_TRUE(proof) << "nr_socks=" << w << ":\n" << proof.detail;
  }
}

TEST(DispatchProveTest, SingleGroupDefaultMinWorkers) {
  for (uint32_t w : {2u, 8u, 24u, 64u}) {
    DispatchProgramParams p;
    p.num_groups = 1;
    p.workers_per_group = w;
    p.min_workers = 2;
    const DispatchProof proof = prove_params(p);
    EXPECT_TRUE(proof) << proof.detail;
  }
}

TEST(DispatchProveTest, TwoLevelConfigs) {
  // Paper §7 / Appendix C: >64 workers via group sharding.
  struct Geometry {
    uint32_t groups, per_group;
  };
  for (const auto [groups, per_group] : {Geometry{2, 64}, Geometry{4, 32},
                                         Geometry{8, 64}, Geometry{16, 16},
                                         Geometry{64, 64}}) {
    DispatchProgramParams p;
    p.num_groups = groups;
    p.workers_per_group = per_group;
    p.min_workers = 2;
    const DispatchProof proof = prove_params(p);
    EXPECT_TRUE(proof) << groups << "x" << per_group << ":\n"
                       << proof.detail;
  }
}

TEST(DispatchProveTest, ProofDetailNamesEveryCallSite) {
  DispatchProgramParams p;
  p.num_groups = 4;
  p.workers_per_group = 16;
  const DispatchProof proof = prove_params(p);
  ASSERT_TRUE(proof) << proof.detail;
  EXPECT_NE(proof.detail.find("key"), std::string::npos);
  EXPECT_NE(proof.detail.find("return value"), std::string::npos);
  EXPECT_GT(proof.analysis.analysis_steps, 0u);
}

// Every scheduling policy's generated program must carry the same proof:
// the runtime refuses to attach an unproven program (hermes.cc), so a
// policy whose emitter drops a guard must fail HERE, not in production.
DispatchProof prove_policy(const SchedulingPolicy& policy,
                           const PolicyProgramParams& p) {
  const uint64_t nr_socks = static_cast<uint64_t>(p.base.num_groups) *
                            p.base.workers_per_group;
  ArrayMap sel(p.base.num_groups, /*value_size=*/8);
  ReuseportSockArray socks(static_cast<uint32_t>(nr_socks));
  std::vector<Map*> maps = {&sel, &socks};
  std::unique_ptr<ArrayMap> aux;
  if (policy.aux_value_bytes() > 0) {
    aux = std::make_unique<ArrayMap>(p.base.num_groups,
                                     policy.aux_value_bytes());
    maps.push_back(aux.get());
  }
  return prove_dispatch(policy.build_program(p), maps, nr_socks);
}

TEST(DispatchProveTest, EveryPolicyProvenOnEveryGeometry) {
  struct Geometry {
    uint32_t groups, per_group;
  };
  for (size_t k = 0; k < kPolicyCount; ++k) {
    const auto policy = make_policy(static_cast<PolicyKind>(k),
                                    PolicyConfig{{4, 4, 2, 1}});
    for (const auto [groups, per_group] :
         {Geometry{1, 2}, Geometry{1, 8}, Geometry{2, 8}, Geometry{2, 64},
          Geometry{4, 16}, Geometry{3, 5}, Geometry{16, 16},
          Geometry{64, 64}}) {
      PolicyProgramParams p;
      p.base.num_groups = groups;
      p.base.workers_per_group = per_group;
      p.base.min_workers = 1;
      const DispatchProof proof = prove_policy(*policy, p);
      EXPECT_TRUE(proof) << policy->name() << " " << groups << "x"
                         << per_group << ":\n"
                         << proof.detail;
    }
  }
}

TEST(DispatchProveTest, PlantedOutOfRangeSelectionFailsProofPerPolicy) {
  // The negative control per policy: plant_out_of_range omits the range
  // guards in front of the socket selection, so the selected key can
  // exceed nr_socks — prove.h MUST reject every such program (a planted
  // program is never loaded). This is what stops a future policy author
  // from shipping an unguarded index.
  for (size_t k = 0; k < kPolicyCount; ++k) {
    const auto policy = make_policy(static_cast<PolicyKind>(k),
                                    PolicyConfig{{4, 4, 2, 1}});
    PolicyProgramParams p;
    p.base.num_groups = 2;
    p.base.workers_per_group = 16;
    p.base.min_workers = 1;
    p.plant_out_of_range = true;
    const DispatchProof proof = prove_policy(*policy, p);
    EXPECT_FALSE(proof) << policy->name()
                        << ": planted out-of-range selection was proven";
    // The rejection may trip at the sk_select key bound ("not proven") or
    // earlier, when the unguarded index walks out of the aux map value —
    // either way the program must not load.
    EXPECT_TRUE(proof.detail.find("not proven") != std::string::npos ||
                proof.detail.find("out of bounds") != std::string::npos)
        << policy->name() << ":\n"
        << proof.detail;
  }
}

TEST(DispatchProveTest, NegativeControlUnguardedIndexFailsProof) {
  // Sanity that the proof has teeth: a sockarray smaller than the worker
  // id space must NOT be provable (the guard bounds the index below
  // num_groups * workers_per_group, not below an arbitrary bound).
  DispatchProgramParams p;
  p.num_groups = 1;
  p.workers_per_group = 64;
  p.min_workers = 1;
  ArrayMap sel(1, 8);
  ReuseportSockArray socks(32);  // too small: ids 32..63 overflow it
  std::vector<Map*> maps = {&sel, &socks};
  const DispatchProof proof =
      prove_dispatch(build_dispatch_program(p), maps, /*nr_socks=*/32);
  EXPECT_FALSE(proof);
  EXPECT_NE(proof.detail.find("not proven"), std::string::npos);
}

}  // namespace
}  // namespace hermes::core
