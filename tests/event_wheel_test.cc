// Differential property tests: the hierarchical timing-wheel EventQueue
// against the retained binary-heap reference (HeapEventQueue).
//
// Both queues are driven with identical operation scripts — schedules
// (including zero delays, timestamp ties, and far-future events beyond the
// wheel horizon), cancellations (from outside and from inside callbacks,
// including stale/double cancels), nested scheduling from callbacks,
// run_until boundaries, and single steps — and must produce bit-identical
// firing logs (event id, firing timestamp) and clock reads. The heap is the
// determinism oracle: equal timestamps fire in insertion order.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "simcore/event_queue.h"

namespace hermes::sim {
namespace {

// The in-wheel horizon is 64^6 ns ~= 68.7 simulated seconds; anything past
// it lands on the overflow list and exercises the full-wheel rebase.
constexpr int64_t kHorizonNs = 1ll << 36;

uint64_t splitmix64(uint64_t& s) {
  uint64_t z = (s += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d4b33a5acfe21dull;
  return z ^ (z >> 31);
}

// One scripted operation, precomputed so both queues replay the same list.
struct Op {
  enum Kind { kSchedule, kCancel, kRunUntil, kStep } kind;
  int64_t delay_ns = 0;   // kSchedule / kRunUntil
  uint32_t arg = 0;       // kSchedule: behavior hash; kCancel: handle slot
};

std::vector<Op> make_script(uint64_t seed, int n_ops) {
  uint64_t s = seed;
  std::vector<Op> ops;
  ops.reserve(n_ops);
  for (int i = 0; i < n_ops; ++i) {
    Op op;
    const uint64_t roll = splitmix64(s) % 100;
    if (roll < 55) {
      op.kind = Op::kSchedule;
      const uint64_t shape = splitmix64(s) % 10;
      if (shape < 2) {
        op.delay_ns = 0;  // same-timestamp tie with the current instant
      } else if (shape < 6) {
        op.delay_ns = static_cast<int64_t>(splitmix64(s) % 1000);  // ties
      } else if (shape < 9) {
        op.delay_ns = static_cast<int64_t>(splitmix64(s) % 5'000'000);
      } else {
        // Beyond the wheel horizon: overflow list + rebase path.
        op.delay_ns = kHorizonNs + static_cast<int64_t>(
            splitmix64(s) % kHorizonNs);
      }
      op.arg = static_cast<uint32_t>(splitmix64(s));
    } else if (roll < 70) {
      op.kind = Op::kCancel;
      op.arg = static_cast<uint32_t>(splitmix64(s));
    } else if (roll < 90) {
      op.kind = Op::kRunUntil;
      op.delay_ns = static_cast<int64_t>(splitmix64(s) % 2'000'000);
    } else {
      op.kind = Op::kStep;
    }
    ops.push_back(op);
  }
  return ops;
}

// Replays a script against one queue implementation. Callback behavior
// (nested scheduling, cancel-from-callback) is derived from the event's own
// id via splitmix64, so it is identical across implementations as long as
// the firing order is — which is exactly what the test asserts.
template <class Q>
class Driver {
 public:
  std::vector<std::pair<uint64_t, int64_t>> log;  // (event id, fire ns)

  void run(const std::vector<Op>& ops) {
    for (const Op& op : ops) {
      switch (op.kind) {
        case Op::kSchedule:
          schedule(SimTime::nanos(op.delay_ns), op.arg);
          break;
        case Op::kCancel:
          if (!handles_.empty()) {
            q_.cancel(handles_[op.arg % handles_.size()]);
          }
          break;
        case Op::kRunUntil:
          q_.run_until(q_.now() + SimTime::nanos(op.delay_ns));
          log.emplace_back(kClockMark, q_.now().ns());
          break;
        case Op::kStep:
          q_.step();
          log.emplace_back(kClockMark, q_.now().ns());
          break;
      }
    }
    q_.run_all();
    log.emplace_back(kClockMark, q_.now().ns());
  }

 private:
  static constexpr uint64_t kClockMark = ~0ull;

  void schedule(SimTime delay, uint32_t behavior) {
    const uint64_t id = next_id_++;
    handles_.push_back(q_.schedule_after(delay, [this, id, behavior] {
      log.emplace_back(id, q_.now().ns());
      uint64_t s = id * 0x9e3779b97f4a7c15ull + behavior;
      const uint64_t roll = splitmix64(s);
      if (roll % 4 == 0 && next_id_ < 4000) {
        // Nested schedule, sometimes a zero delay (fires this instant,
        // after everything already queued at it).
        schedule(SimTime::nanos(static_cast<int64_t>(splitmix64(s) % 1500)),
                 static_cast<uint32_t>(splitmix64(s)));
      }
      if (roll % 7 == 0 && !handles_.empty()) {
        // Cancel from inside a callback — may hit an unfired, already-fired,
        // or already-cancelled handle; all must behave identically.
        q_.cancel(handles_[splitmix64(s) % handles_.size()]);
      }
    }));
  }

  Q q_;
  std::vector<typename Q::Handle> handles_;
  uint64_t next_id_ = 0;
};

void run_differential(uint64_t seed, int n_ops) {
  const std::vector<Op> script = make_script(seed, n_ops);
  Driver<EventQueue> wheel;
  Driver<HeapEventQueue> heap;
  wheel.run(script);
  heap.run(script);
  ASSERT_EQ(wheel.log.size(), heap.log.size()) << "seed " << seed;
  for (size_t i = 0; i < wheel.log.size(); ++i) {
    ASSERT_EQ(wheel.log[i], heap.log[i])
        << "seed " << seed << " diverges at log entry " << i;
  }
}

TEST(EventWheelProperty, DifferentialFuzzVsHeap) {
  for (uint64_t seed = 1; seed <= 40; ++seed) run_differential(seed, 400);
}

TEST(EventWheelProperty, DifferentialFuzzLongScripts) {
  for (uint64_t seed = 100; seed < 106; ++seed) run_differential(seed, 3000);
}

// ---- Targeted corners the fuzzer covers only probabilistically ----------

TEST(EventWheelProperty, MassTieBreakOrderSurvivesCascades) {
  // A burst at one far timestamp files into an upper level, then cascades
  // down through every level before firing; insertion order must survive.
  EventQueue eq;
  std::vector<int> fired;
  const SimTime t = SimTime::nanos(123'456'789);  // crosses several levels
  for (int i = 0; i < 500; ++i) {
    eq.schedule_at(t, [&fired, i] { fired.push_back(i); });
  }
  eq.run_all();
  ASSERT_EQ(fired.size(), 500u);
  for (int i = 0; i < 500; ++i) EXPECT_EQ(fired[i], i);
  EXPECT_EQ(eq.now(), t);
}

TEST(EventWheelProperty, FarFutureBeyondHorizonFiresInOrder) {
  EventQueue eq;
  std::vector<int> fired;
  // All beyond the 64^6 ns wheel horizon: overflow list, then rebase.
  eq.schedule_at(SimTime::nanos(3 * kHorizonNs + 5), [&] { fired.push_back(3); });
  eq.schedule_at(SimTime::nanos(2 * kHorizonNs + 7), [&] { fired.push_back(2); });
  eq.schedule_at(SimTime::nanos(2 * kHorizonNs + 7), [&] { fired.push_back(20); });
  eq.schedule_at(SimTime::nanos(5), [&] { fired.push_back(1); });
  eq.run_all();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 20, 3}));
  EXPECT_EQ(eq.now().ns(), 3 * kHorizonNs + 5);
}

TEST(EventWheelProperty, OverflowRebaseAllowsNearSchedulingAfter) {
  EventQueue eq;
  std::vector<int> fired;
  eq.schedule_at(SimTime::nanos(2 * kHorizonNs), [&] {
    fired.push_back(1);
    // After the rebase the wheel's windows sit at ~2*horizon; near-term
    // scheduling relative to the new now() must still file correctly.
    eq.schedule_after(SimTime::nanos(3), [&] { fired.push_back(2); });
    eq.schedule_after(SimTime::nanos(0), [&] { fired.push_back(10); });
  });
  eq.run_all();
  EXPECT_EQ(fired, (std::vector<int>{1, 10, 2}));
}

TEST(EventWheelProperty, RunUntilNeverAdvancesPastBoundary) {
  // An event one tick past the boundary must not fire, and the wheel must
  // not re-window past the boundary while probing (a later near-term
  // schedule would otherwise hit a base ahead of now()).
  EventQueue eq;
  bool fired = false;
  eq.schedule_at(SimTime::nanos(1001), [&] { fired = true; });
  eq.run_until(SimTime::nanos(1000));
  EXPECT_FALSE(fired);
  EXPECT_EQ(eq.now().ns(), 1000);
  bool near = false;
  eq.schedule_after(SimTime::nanos(0), [&] { near = true; });
  eq.run_until(SimTime::nanos(1000));
  EXPECT_TRUE(near);
  eq.run_all();
  EXPECT_TRUE(fired);
}

TEST(EventWheelProperty, CancelBeyondHorizonAndStaleHandles) {
  EventQueue eq;
  std::vector<int> fired;
  auto h_far = eq.schedule_at(SimTime::nanos(2 * kHorizonNs),
                              [&] { fired.push_back(99); });
  auto h_near = eq.schedule_at(SimTime::nanos(10), [&] { fired.push_back(1); });
  eq.cancel(h_far);
  eq.run_all();
  // Stale cancels (fired handle, double cancel, default handle) are no-ops
  // even after the record slot is recycled by a new event.
  eq.cancel(h_near);
  eq.cancel(h_far);
  eq.cancel(EventQueue::Handle{});
  eq.schedule_after(SimTime::nanos(5), [&] { fired.push_back(2); });
  eq.cancel(h_near);  // must not kill the recycled slot's new occupant
  eq.run_all();
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
}

TEST(EventWheelProperty, RecordSlabRecyclesUnderChurn) {
  // Steady-state: one outstanding event at a time, many firings. The record
  // slab must recycle a bounded footprint rather than growing per event.
  EventQueue eq;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 10000) eq.schedule_after(SimTime::nanos(7), chain);
  };
  eq.schedule_after(SimTime::nanos(7), chain);
  eq.run_all();
  EXPECT_EQ(count, 10000);
  EXPECT_EQ(eq.now().ns(), 7ll * 10000);
  EXPECT_TRUE(eq.empty());
  EXPECT_FALSE(eq.step());
}

TEST(EventWheelProperty, PendingTracksLiveEvents) {
  EventQueue eq;
  auto a = eq.schedule_at(SimTime::nanos(5), [] {});
  eq.schedule_at(SimTime::nanos(6), [] {});
  EXPECT_EQ(eq.pending(), 2u);
  eq.cancel(a);
  EXPECT_EQ(eq.pending(), 1u);
  eq.cancel(a);  // double cancel does not double-count
  EXPECT_EQ(eq.pending(), 1u);
  eq.run_all();
  EXPECT_EQ(eq.pending(), 0u);
  EXPECT_TRUE(eq.empty());
}

}  // namespace
}  // namespace hermes::sim
