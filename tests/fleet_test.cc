// Fleet tests: Maglev table properties (balance, minimal disruption on
// membership churn), front-tier routing consistency, PCC violation
// accounting under LB add/remove, and fleet-scale imbalance.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "sim/fleet.h"

namespace hermes::sim {
namespace {

LbDevice::ConnPlan sticky_plan() {
  // Connections that stay open: many requests with a long constant gap, so
  // the live set is stable while audits run.
  LbDevice::ConnPlan plan;
  plan.remaining = 1000;
  plan.cost_us = DistSpec::constant(50);
  plan.bytes = DistSpec::constant(400);
  plan.gap_us = DistSpec::constant(5'000'000);  // 5 s between requests
  return plan;
}

Fleet::Config small_fleet(uint32_t num_lbs) {
  Fleet::Config fc;
  fc.num_lbs = num_lbs;
  fc.device.mode = netsim::DispatchMode::HermesMode;
  fc.device.num_workers = 2;
  fc.device.num_ports = 4;
  fc.device.backlog = 4096;
  fc.device.observability = false;
  fc.seed = 7;
  return fc;
}

TEST(MaglevTest, SlotsBalancedAcrossBackends) {
  MaglevTable table(65537);
  const std::vector<uint32_t> backends = {0, 1, 2, 3, 4};
  table.build(backends);
  std::map<uint32_t, uint32_t> owned;
  for (uint32_t s = 0; s < table.size(); ++s) ++owned[table.slot_owner(s)];
  ASSERT_EQ(owned.size(), backends.size());
  const double expect = 65537.0 / 5.0;
  for (const auto& [id, n] : owned) {
    EXPECT_GT(n, expect * 0.99) << "backend " << id;
    EXPECT_LT(n, expect * 1.01) << "backend " << id;
  }
}

TEST(MaglevTest, RemovalDisruptsOnlyRemovedBackendsSlots) {
  MaglevTable before(65537), after(65537);
  before.build({0, 1, 2, 3});
  after.build({0, 1, 3});
  uint32_t moved_surviving = 0, total_surviving = 0;
  for (uint32_t s = 0; s < before.size(); ++s) {
    if (before.slot_owner(s) == 2) continue;  // removed backend's slots
    ++total_surviving;
    if (after.slot_owner(s) != before.slot_owner(s)) ++moved_surviving;
  }
  // Maglev's disruption bound: slots owned by survivors barely move.
  EXPECT_LT(static_cast<double>(moved_surviving) /
                static_cast<double>(total_surviving),
            0.03);
}

TEST(MaglevTest, AdditionRemapsRoughlyOneNth) {
  MaglevTable before(65537), after(65537);
  before.build({0, 1, 2, 3});
  after.build({0, 1, 2, 3, 4});
  uint32_t moved = 0;
  for (uint32_t s = 0; s < before.size(); ++s) {
    if (after.slot_owner(s) != before.slot_owner(s)) ++moved;
  }
  const double frac = static_cast<double>(moved) / 65537.0;
  EXPECT_GT(frac, 0.15);  // the new backend must take ~1/5
  EXPECT_LT(frac, 0.30);  // ...but not much more than that
}

TEST(FleetTest, OpenBurstRoutesByTupleHashWithZeroViolations) {
  Fleet fleet(small_fleet(4));
  const size_t established = fleet.open_burst(0, sticky_plan(), 2000);
  EXPECT_GT(established, 1900u);
  // Every connection sits on the device its tuple hash routes to.
  const auto audit = fleet.audit_pcc();
  EXPECT_EQ(audit.checked, established);
  EXPECT_EQ(audit.maglev_violations, 0u);
  // Devices all got a share.
  for (size_t d = 0; d < fleet.device_count(); ++d) {
    EXPECT_GT(fleet.device(d).live_connections(), 0u) << "device " << d;
  }
}

TEST(FleetTest, RequestsCompleteAcrossFleetInLockstep) {
  Fleet fleet(small_fleet(3));
  fleet.open_burst(0, sticky_plan(), 600);
  fleet.run_until(SimTime::millis(500));
  // Every accepted connection delivered (at least) its first request.
  EXPECT_GT(fleet.total_completed(), 500u);
  EXPECT_EQ(fleet.now(), SimTime::millis(500));
}

TEST(FleetTest, AddLbRemapsSmallFractionUnderMaglev) {
  Fleet fleet(small_fleet(4));
  const size_t established = fleet.open_burst(0, sticky_plan(), 4000);
  fleet.run_until(SimTime::millis(200));

  fleet.add_lb();
  const auto audit = fleet.audit_pcc();
  EXPECT_EQ(audit.checked, established);
  // Maglev: ~1/5 of connections remap; the mod-N baseline breaks most of
  // the fleet (canonical stateless-LB comparison).
  const double maglev_frac = static_cast<double>(audit.maglev_violations) /
                             static_cast<double>(audit.checked);
  const double modn_frac = static_cast<double>(audit.modn_violations) /
                           static_cast<double>(audit.checked);
  EXPECT_GT(maglev_frac, 0.10);
  EXPECT_LT(maglev_frac, 0.30);
  EXPECT_GT(modn_frac, 0.5);
  EXPECT_GT(modn_frac, maglev_frac * 2);
}

TEST(FleetTest, RemoveLbBreaksItsConnectionsOnly) {
  Fleet fleet(small_fleet(4));
  fleet.open_burst(0, sticky_plan(), 4000);
  fleet.run_until(SimTime::millis(200));  // let accepts drain

  const uint64_t victim_live = fleet.device(2).live_connections();
  ASSERT_GT(victim_live, 0u);
  const uint64_t live_before = fleet.total_live();

  fleet.remove_lb(2);
  EXPECT_FALSE(fleet.active(2));
  EXPECT_EQ(fleet.active_count(), 3u);
  // Broken = exactly the removed device's connections.
  EXPECT_EQ(fleet.broken_total(), victim_live);

  // Survivors: Maglev leaves nearly all of them routed where they live
  // (only the removed device's hash-space moved).
  const auto audit = fleet.audit_pcc();
  EXPECT_GE(audit.checked, live_before - victim_live - 10);
  const double maglev_frac = static_cast<double>(audit.maglev_violations) /
                             static_cast<double>(audit.checked);
  EXPECT_LT(maglev_frac, 0.05);

  // New traffic only lands on active devices.
  const uint64_t on_victim = fleet.device(2).live_connections();
  fleet.open_burst(1, sticky_plan(), 1000);
  EXPECT_EQ(fleet.device(2).live_connections(), on_victim);
}

TEST(FleetTest, ImbalanceReflectsPerDeviceConnCounts) {
  Fleet fleet(small_fleet(4));
  fleet.open_burst(0, sticky_plan(), 8000);
  const auto im = fleet.imbalance();
  EXPECT_GT(im.conn_avg, 0);
  EXPECT_GE(im.conn_max, im.conn_min);
  // Hash spread over 4 devices: max/avg stays near 1.
  EXPECT_GT(im.max_over_avg, 0.9);
  EXPECT_LT(im.max_over_avg, 1.3);
}

}  // namespace
}  // namespace hermes::sim
