// HermesRuntime end-to-end with the netsim kernel: the full closed loop of
// stages 1-3 without the workload simulator.
#include <gtest/gtest.h>

#include <map>

#include "core/hermes.h"
#include "netsim/netstack.h"
#include "simcore/rng.h"

namespace hermes::core {
namespace {

netsim::FourTuple rand_tuple(sim::Rng& rng, uint16_t dport) {
  return netsim::FourTuple{static_cast<uint32_t>(rng.next_u64()),
                           0x0a000001,
                           static_cast<uint16_t>(rng.next_u64()), dport};
}

class RuntimeTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kWorkers = 4;

  RuntimeTest() : runtime_(make_options()) {
    netsim::NetStack::Config cfg;
    cfg.mode = netsim::DispatchMode::HermesMode;
    cfg.num_workers = kWorkers;
    ns_.emplace(cfg);
    ns_->add_port(80);

    // Wire stage 3: per-port sockarray from the port's socket cookies.
    std::vector<uint64_t> cookies;
    for (WorkerId w = 0; w < kWorkers; ++w) {
      cookies.push_back(ns_->worker_socket(80, w)->cookie());
    }
    attachment_ = runtime_.attach_port(cookies);
    ns_->group(80)->attach_program(&runtime_.vm(), attachment_.program.get());
  }

  static HermesRuntime::Options make_options() {
    HermesRuntime::Options o;
    o.num_workers = kWorkers;
    return o;
  }

  void all_alive(SimTime now) {
    for (WorkerId w = 0; w < kWorkers; ++w) {
      runtime_.hooks_for(w).on_loop_enter(now);
    }
  }

  std::map<WorkerId, int> drive_connections(int n, uint64_t seed) {
    sim::Rng rng(seed);
    std::map<WorkerId, int> got;
    ns_->set_socket_ready_fn(
        [&](WorkerId w, netsim::ListeningSocket&) { ++got[w]; });
    for (int i = 0; i < n; ++i) {
      ns_->on_connection_request(rand_tuple(rng, 80), 80, 0, SimTime::zero());
    }
    return got;
  }

  HermesRuntime runtime_;
  std::optional<netsim::NetStack> ns_;
  PortAttachment attachment_;
};

TEST_F(RuntimeTest, FullLoopDispatchesOnlyToSelectedWorkers) {
  const SimTime now = SimTime::millis(10);
  all_alive(now);
  // Make workers 1 and 3 heavily loaded: scheduler must exclude them.
  runtime_.hooks_for(1).wst();  // (hooks are value handles; use wst directly)
  runtime_.wst().add_connections(1, 1000);
  runtime_.wst().add_connections(3, 800);

  const auto res = runtime_.schedule_and_sync(/*self=*/0, now);
  EXPECT_EQ(res.bitmap, 0b0101u);
  EXPECT_EQ(runtime_.kernel_bitmap(), 0b0101u);

  auto got = drive_connections(500, 42);
  EXPECT_GT(got[0], 0);
  EXPECT_GT(got[2], 0);
  EXPECT_EQ(got.count(1), 0u);
  EXPECT_EQ(got.count(3), 0u);
  EXPECT_EQ(ns_->group(80)->stats().bpf_selections, 500u);
}

TEST_F(RuntimeTest, SingleSurvivorFallsBackToHashing) {
  // Three workers hung: only one passes the coarse filter, which is below
  // the kernel's n>1 requirement -> plain reuseport hashing.
  const SimTime now = SimTime::seconds(1);
  all_alive(now);
  for (WorkerId w : {1u, 2u, 3u}) {
    runtime_.wst().update_avail(w, SimTime::zero());
  }
  const auto res = runtime_.schedule_and_sync(0, now);
  EXPECT_EQ(res.selected, 1u);

  auto got = drive_connections(400, 43);
  // Fallback hashing spreads over everyone — including "overloaded" ones.
  EXPECT_EQ(ns_->group(80)->stats().bpf_fallbacks, 400u);
  EXPECT_GE(got.size(), 3u);
}

TEST_F(RuntimeTest, HungWorkerBypassedAfterSync) {
  const SimTime now = SimTime::seconds(1);
  all_alive(now);
  runtime_.wst().update_avail(2, SimTime::zero());  // hung long ago
  runtime_.schedule_and_sync(0, now);
  auto got = drive_connections(300, 44);
  EXPECT_EQ(got.count(2), 0u);
  EXPECT_EQ(got[0] + got[1] + got[3], 300);
}

TEST_F(RuntimeTest, StaleBitmapRefreshedByNextSync) {
  const SimTime t1 = SimTime::millis(10);
  all_alive(t1);
  runtime_.wst().add_connections(0, 1000);
  runtime_.schedule_and_sync(1, t1);
  EXPECT_FALSE(bitmap_test(runtime_.kernel_bitmap(), 0));

  // Worker 0 drains; any worker's next schedule pass restores it.
  runtime_.wst().add_connections(0, -1000);
  const SimTime t2 = SimTime::millis(15);
  all_alive(t2);
  runtime_.schedule_and_sync(3, t2);
  EXPECT_TRUE(bitmap_test(runtime_.kernel_bitmap(), 0));
}

TEST_F(RuntimeTest, CountersTrackSchedulesAndSyncs) {
  // Reference path: every sync publishes, even a back-to-back identical one.
  runtime_.scheduler().set_path(core::SchedPath::Reference);
  const SimTime now = SimTime::millis(5);
  all_alive(now);
  auto res = runtime_.schedule_and_sync(0, now);
  EXPECT_TRUE(res.published);
  res = runtime_.schedule_and_sync(1, now);
  EXPECT_TRUE(res.published);
  EXPECT_EQ(runtime_.counters().schedules, 2u);
  EXPECT_EQ(runtime_.counters().syncs, 2u);
  EXPECT_EQ(runtime_.counters().syncs_suppressed, 0u);
  EXPECT_EQ(runtime_.counters().workers_selected_sum, 8u);
}

TEST_F(RuntimeTest, FastPathSuppressesUnchangedSyncWithinRefreshInterval) {
  runtime_.scheduler().set_path(core::SchedPath::Fast);
  const SimTime now = SimTime::millis(5);
  all_alive(now);
  auto res = runtime_.schedule_and_sync(0, now);
  EXPECT_TRUE(res.published);
  // Identical bitmap within sync_refresh_interval: store skipped.
  res = runtime_.schedule_and_sync(1, now + SimTime::millis(1));
  EXPECT_FALSE(res.published);
  EXPECT_EQ(runtime_.counters().syncs, 1u);
  EXPECT_EQ(runtime_.counters().syncs_suppressed, 1u);
  // Changed bitmap: published immediately even inside the interval.
  runtime_.wst().add_connections(2, 1000);
  res = runtime_.schedule_and_sync(0, now + SimTime::millis(2));
  EXPECT_TRUE(res.published);
  EXPECT_FALSE(bitmap_test(runtime_.kernel_bitmap(), 2));
  // Identical again, but the refresh interval elapsed: forced publish.
  const SimTime later =
      now + SimTime::millis(2) + runtime_.config().sync_refresh_interval;
  all_alive(later);
  res = runtime_.schedule_and_sync(1, later);
  EXPECT_TRUE(res.published);
  EXPECT_EQ(runtime_.counters().syncs, 3u);
  EXPECT_EQ(runtime_.counters().syncs_suppressed, 1u);
  // schedules counts every run, suppressed or not.
  EXPECT_EQ(runtime_.counters().schedules, 4u);
}

TEST(RuntimeGroupTest, TwoLevelRuntimeFor128Workers) {
  HermesRuntime::Options o;
  o.num_workers = 128;
  o.config.workers_per_group = 64;
  HermesRuntime rt(o);
  EXPECT_EQ(rt.num_groups(), 2u);

  const SimTime now = SimTime::millis(1);
  for (WorkerId w = 0; w < 128; ++w) rt.hooks_for(w).on_loop_enter(now);

  // Worker 70 (group 1) schedules only group 1's slice.
  rt.wst().add_connections(100, 5000);
  const auto res = rt.schedule_and_sync(70, now);
  EXPECT_EQ(res.selected, 63u);                       // group 1 minus worker 100
  EXPECT_FALSE(bitmap_test(res.bitmap, 100 - 64));    // group-relative bit
  EXPECT_EQ(rt.kernel_bitmap(1), res.bitmap);
  EXPECT_EQ(rt.kernel_bitmap(0), 0u);  // group 0 not scheduled yet
}

TEST(RuntimeGroupTest, OddWorkerCountLastGroupSmaller) {
  HermesRuntime::Options o;
  o.num_workers = 70;
  o.config.workers_per_group = 64;
  HermesRuntime rt(o);
  EXPECT_EQ(rt.num_groups(), 2u);
  const SimTime now = SimTime::millis(1);
  for (WorkerId w = 0; w < 70; ++w) rt.hooks_for(w).on_loop_enter(now);
  const auto res = rt.schedule_and_sync(69, now);
  EXPECT_EQ(res.selected, 6u);  // workers 64..69
}

TEST(RuntimeShmTest, ExternalMemoryBacksWst) {
  std::vector<uint8_t> buf(WorkerStatusTable::required_bytes(4) + 64);
  const auto addr = reinterpret_cast<uintptr_t>(buf.data());
  void* mem = reinterpret_cast<void*>((addr + 63) & ~uintptr_t{63});

  HermesRuntime::Options o;
  o.num_workers = 4;
  o.wst_memory = mem;
  HermesRuntime rt(o);
  rt.wst().add_connections(2, 7);

  // Another attach to the same bytes sees the update (the multi-process
  // path; full fork()-based coverage lives in wst_test).
  auto other = WorkerStatusTable::attach(mem);
  EXPECT_EQ(other.connections(2), 7);
}

}  // namespace
}  // namespace hermes::core
