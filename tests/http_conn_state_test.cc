// http::ConnState: keep-alive + pipelining over iobuf chains, zero-copy
// wire building vs the copy oracle, Connection: close semantics, and
// backpressure.
#include "http/conn_state.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

namespace hermes::http {
namespace {

std::string simple_get(int i, bool close = false) {
  std::string s = "GET /item/" + std::to_string(i) + " HTTP/1.1\r\n";
  s += "Host: example.com\r\n";
  if (close) s += "Connection: close\r\n";
  s += "\r\n";
  return s;
}

TEST(ConnState, SingleRequestZeroCopyWireMatches) {
  ConnState cs;  // default: zero-copy
  const std::string wire = simple_get(1);
  cs.on_client_data(std::string_view{wire});
  ASSERT_TRUE(cs.has_ready());
  auto r = cs.pop_ready();
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->request.method, Method::Get);
  EXPECT_EQ(r->request.path, "/item/1");
  EXPECT_EQ(r->wire.to_string(), wire);
  // The forwarding path never memcpy'd: only the admission copy happened.
  EXPECT_EQ(cs.stats().forward_bytes_copied, 0u);
  EXPECT_EQ(cs.stats().forward_bytes_referenced, wire.size());
}

TEST(ConnState, OracleModeCopiesButProducesIdenticalBytes) {
  ConnState::Config cc;
  cc.zero_copy = false;
  ConnState oracle(cc);
  ConnState zc;

  const std::string wire = simple_get(7) + simple_get(8);
  oracle.on_client_data(std::string_view{wire});
  zc.on_client_data(std::string_view{wire});

  for (int i = 0; i < 2; ++i) {
    auto a = oracle.pop_ready();
    auto b = zc.pop_ready();
    ASSERT_TRUE(a && b);
    EXPECT_EQ(a->wire.fnv1a(), b->wire.fnv1a());
    EXPECT_EQ(a->wire.to_string(), b->wire.to_string());
  }
  EXPECT_GT(oracle.stats().forward_bytes_copied, 0u);
  EXPECT_EQ(zc.stats().forward_bytes_copied, 0u);
}

TEST(ConnState, KeepAlivePipeliningAcrossFragmentedSlices) {
  ConnState cs;
  std::string wire;
  constexpr int kReqs = 5;
  for (int i = 0; i < kReqs; ++i) wire += simple_get(i);

  // Deliver in awkward 7-byte slices, each its own retained segment.
  for (size_t off = 0; off < wire.size(); off += 7) {
    const size_t n = std::min<size_t>(7, wire.size() - off);
    cs.on_client_data(std::string_view{wire}.substr(off, n));
  }

  std::string reassembled;
  int popped = 0;
  while (auto r = cs.pop_ready()) {
    EXPECT_EQ(r->request.path,
              "/item/" + std::to_string(popped));
    reassembled += r->wire.to_string();
    ++popped;
  }
  EXPECT_EQ(popped, kReqs);
  EXPECT_EQ(reassembled, wire);  // wire chains partition the input exactly
  EXPECT_EQ(cs.stats().forward_bytes_copied, 0u);
}

TEST(ConnState, ConnectionCloseStopsConsuming) {
  ConnState cs;
  const std::string wire = simple_get(1, /*close=*/true) + simple_get(2);
  cs.on_client_data(std::string_view{wire});
  auto r = cs.pop_ready();
  ASSERT_TRUE(r.has_value());
  EXPECT_FALSE(r->request.keep_alive());
  EXPECT_TRUE(cs.wants_close());
  // The pipelined second request is left unparsed, like a closing server.
  EXPECT_FALSE(cs.has_ready());
  EXPECT_GT(cs.buffered_bytes(), 0u);
}

TEST(ConnState, MaxPipelineBackpressure) {
  ConnState::Config cc;
  cc.max_pipeline = 2;
  ConnState cs(cc);
  std::string wire;
  for (int i = 0; i < 5; ++i) wire += simple_get(i);
  cs.on_client_data(std::string_view{wire});

  // Only max_pipeline requests parse ahead; popping resumes the pump.
  int popped = 0;
  while (auto r = cs.pop_ready()) ++popped;
  EXPECT_EQ(popped, 5);
}

TEST(ConnState, BodyBytesTravelInWireChainNotRequestBody) {
  ConnState cs;  // capture_body off by default
  const std::string wire =
      "POST /up HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
  cs.on_client_data(std::string_view{wire});
  auto r = cs.pop_ready();
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->request.body.empty());          // not flattened
  EXPECT_EQ(r->wire.to_string(), wire);          // but fully forwarded
}

TEST(ConnState, ParseErrorSurfaces) {
  ConnState cs;
  cs.on_client_data(std::string_view{"NONSENSE\r\n\r\n"});
  EXPECT_TRUE(cs.failed());
  EXPECT_FALSE(cs.has_ready());
}

TEST(ConnState, EgressRespectsMode) {
  Response resp;
  resp.set_status(200).set_body("0123456789");
  const netsim::IoChain encoded = ConnState::encode(resp);

  ConnState zc;
  ConnState::Config oc;
  oc.zero_copy = false;
  ConnState oracle(oc);

  const netsim::IoChain a = zc.egress(encoded);
  const netsim::IoChain b = oracle.egress(encoded);
  EXPECT_EQ(a.to_string(), b.to_string());
  EXPECT_EQ(a.fnv1a(), b.fnv1a());
  EXPECT_EQ(zc.stats().forward_bytes_copied, 0u);
  EXPECT_EQ(oracle.stats().forward_bytes_copied, encoded.size());
}

TEST(ConnState, EnvSelectorParsesHermesZerocopy) {
  // Never persists: restore whatever was set around this test.
  const char* old = std::getenv("HERMES_ZEROCOPY");
  const std::string saved = old ? old : "";

  unsetenv("HERMES_ZEROCOPY");
  EXPECT_TRUE(zero_copy_enabled_from_env());
  setenv("HERMES_ZEROCOPY", "1", 1);
  EXPECT_TRUE(zero_copy_enabled_from_env());
  setenv("HERMES_ZEROCOPY", "0", 1);
  EXPECT_FALSE(zero_copy_enabled_from_env());

  if (old != nullptr) {
    setenv("HERMES_ZEROCOPY", saved.c_str(), 1);
  } else {
    unsetenv("HERMES_ZEROCOPY");
  }
}

}  // namespace
}  // namespace hermes::http
