// Property test: parsing an HTTP request stream through http::ConnState
// over iobuf chains — at EVERY fragmentation boundary, from 1-byte splits
// through whole-buffer delivery — must produce results identical to the
// flat-string RequestParser path: same requests, same headers, same
// bodies, same consumed-byte counts, same forwarded wire bytes.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "http/conn_state.h"
#include "http/parser.h"

namespace hermes::http {
namespace {

// A parsed request flattened into owning strings so results from the
// borrow-mode path (views into retained segments) can be compared after
// those segments are released.
struct FlatRequest {
  Method method;
  std::string target;
  std::string path;
  std::string query;
  std::vector<std::pair<std::string, std::string>> headers;
  std::vector<std::pair<std::string, std::string>> trailers;
  std::string body;
  size_t wire_size;

  bool operator==(const FlatRequest& o) const {
    return method == o.method && target == o.target && path == o.path &&
           query == o.query && headers == o.headers &&
           trailers == o.trailers && body == o.body &&
           wire_size == o.wire_size;
  }
};

FlatRequest flatten(const Request& r) {
  FlatRequest f;
  f.method = r.method;
  f.target = std::string(r.target);
  f.path = std::string(r.path);
  f.query = std::string(r.query);
  for (size_t i = 0; i < r.headers.size(); ++i) {
    auto [n, v] = r.headers.at(i);
    f.headers.emplace_back(std::string(n), std::string(v));
  }
  for (size_t i = 0; i < r.trailers.size(); ++i) {
    auto [n, v] = r.trailers.at(i);
    f.trailers.emplace_back(std::string(n), std::string(v));
  }
  f.body = r.body;
  f.wire_size = r.wire_size;
  return f;
}

// Golden: parse the whole stream flat with a bare RequestParser.
std::vector<FlatRequest> parse_flat(const std::string& stream) {
  std::vector<FlatRequest> out;
  RequestParser p;
  size_t off = 0;
  while (off < stream.size()) {
    const size_t n = p.feed(std::string_view{stream}.substr(off));
    off += n;
    if (p.has_request()) {
      out.push_back(flatten(p.take()));
      continue;
    }
    EXPECT_FALSE(p.failed()) << p.error();
    if (n == 0) break;
  }
  return out;
}

// Candidate: deliver the stream to a ConnState as iobuf slices split at
// the given fragment boundaries; also checks the forwarded wire chains
// partition the stream exactly.
std::vector<FlatRequest> parse_chained(const std::string& stream,
                                       const std::vector<size_t>& cuts,
                                       bool zero_copy) {
  ConnState::Config cfg;
  cfg.zero_copy = zero_copy;
  cfg.capture_body = true;
  cfg.max_pipeline = 1024;
  ConnState cs(cfg);

  size_t prev = 0;
  for (size_t cut : cuts) {
    cs.on_client_data(std::string_view{stream}.substr(prev, cut - prev));
    prev = cut;
  }
  cs.on_client_data(std::string_view{stream}.substr(prev));
  EXPECT_FALSE(cs.failed()) << cs.error();

  std::vector<FlatRequest> out;
  std::string forwarded;
  while (auto r = cs.pop_ready()) {
    out.push_back(flatten(r->request));
    forwarded += r->wire.to_string();
  }
  EXPECT_EQ(forwarded, stream.substr(0, forwarded.size()));
  return out;
}

const std::string kStreams[] = {
    // Simple keep-alive GET with query string.
    "GET /search?q=hermes&lang=en HTTP/1.1\r\n"
    "Host: example.com\r\n"
    "Accept: */*\r\n"
    "\r\n",
    // POST with a fixed-length body.
    "POST /api/v1/items HTTP/1.1\r\n"
    "Host: api.example.com\r\n"
    "Content-Type: application/json\r\n"
    "Content-Length: 17\r\n"
    "\r\n"
    "{\"name\":\"widget\"}",
    // Chunked with extensions and a trailer section.
    "PUT /upload HTTP/1.1\r\n"
    "Host: u.example.com\r\n"
    "Transfer-Encoding: chunked\r\n"
    "\r\n"
    "5;ext=1\r\n"
    "hello\r\n"
    "6 ;x\r\n"
    " world\r\n"
    "0\r\n"
    "X-Checksum: abc123\r\n"
    "\r\n",
    // Pipelined: three requests back to back, mixed shapes.
    "GET /a HTTP/1.1\r\nHost: h\r\n\r\n"
    "POST /b HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nwxyz"
    "GET /c?k=v HTTP/1.1\r\nHost: h\r\nX-Trace: 1\r\nX-Trace: 2\r\n\r\n",
};

TEST(HttpFragmentation, EverySingleSplitMatchesFlatParse) {
  for (const std::string& stream : kStreams) {
    const std::vector<FlatRequest> golden = parse_flat(stream);
    ASSERT_FALSE(golden.empty());
    // Whole-buffer delivery first.
    EXPECT_EQ(parse_chained(stream, {}, /*zero_copy=*/true), golden);
    // Then every two-fragment split boundary.
    for (size_t cut = 1; cut < stream.size(); ++cut) {
      const auto got = parse_chained(stream, {cut}, /*zero_copy=*/true);
      ASSERT_EQ(got, golden) << "stream len " << stream.size()
                             << " split at " << cut;
    }
  }
}

TEST(HttpFragmentation, OneByteAtATimeMatchesFlatParse) {
  for (const std::string& stream : kStreams) {
    const std::vector<FlatRequest> golden = parse_flat(stream);
    std::vector<size_t> cuts;
    for (size_t i = 1; i < stream.size(); ++i) cuts.push_back(i);
    EXPECT_EQ(parse_chained(stream, cuts, /*zero_copy=*/true), golden);
  }
}

TEST(HttpFragmentation, OracleModeMatchesFlatParseAtEverySplit) {
  // The copy oracle must frame identically — it shares the parser but
  // exercises the non-borrowing (arena-copy) header path.
  for (const std::string& stream : kStreams) {
    const std::vector<FlatRequest> golden = parse_flat(stream);
    for (size_t cut = 1; cut < stream.size(); ++cut) {
      const auto got = parse_chained(stream, {cut}, /*zero_copy=*/false);
      ASSERT_EQ(got, golden) << "oracle split at " << cut;
    }
  }
}

TEST(HttpFragmentation, ThreeWaySplitsOnChunkedStream) {
  const std::string& stream = kStreams[2];
  const std::vector<FlatRequest> golden = parse_flat(stream);
  // All ordered (i, j) pairs — covers chunk-size lines, chunk data, and
  // trailer lines each straddling two boundaries at once.
  for (size_t i = 1; i + 1 < stream.size(); i += 3) {
    for (size_t j = i + 1; j < stream.size(); j += 3) {
      const auto got =
          parse_chained(stream, {i, j}, /*zero_copy=*/true);
      ASSERT_EQ(got, golden) << "splits at " << i << "," << j;
    }
  }
}

}  // namespace
}  // namespace hermes::http
