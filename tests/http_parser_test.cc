// HTTP/1.1 request parser: whole-message, byte-at-a-time, pipelining,
// chunked bodies, limits, malformed input.
#include <gtest/gtest.h>

#include <string>

#include "http/parser.h"

namespace hermes::http {
namespace {

Request parse_all(std::string_view wire) {
  RequestParser p;
  const size_t consumed = p.feed(wire);
  EXPECT_TRUE(p.has_request()) << "state=" << static_cast<int>(p.state())
                               << " err=" << p.error();
  EXPECT_EQ(consumed, wire.size());
  return p.take();
}

TEST(ParserTest, SimpleGet) {
  const auto req = parse_all("GET /index.html HTTP/1.1\r\nHost: a.com\r\n\r\n");
  EXPECT_EQ(req.method, Method::Get);
  EXPECT_EQ(req.target, "/index.html");
  EXPECT_EQ(req.path, "/index.html");
  EXPECT_EQ(req.version_major, 1);
  EXPECT_EQ(req.version_minor, 1);
  ASSERT_TRUE(req.host().has_value());
  EXPECT_EQ(*req.host(), "a.com");
}

TEST(ParserTest, QuerySplit) {
  const auto req = parse_all("GET /search?q=1&x=2 HTTP/1.1\r\n\r\n");
  EXPECT_EQ(req.path, "/search");
  EXPECT_EQ(req.query, "q=1&x=2");
}

TEST(ParserTest, AllMethods) {
  for (const char* m : {"GET", "HEAD", "POST", "PUT", "DELETE", "CONNECT",
                        "OPTIONS", "TRACE", "PATCH"}) {
    const auto req =
        parse_all(std::string(m) + " / HTTP/1.1\r\n\r\n");
    EXPECT_STREQ(to_string(req.method), m);
  }
  const auto req = parse_all("BREW /pot HTTP/1.1\r\n\r\n");
  EXPECT_EQ(req.method, Method::Unknown);
}

TEST(ParserTest, ContentLengthBody) {
  const auto req = parse_all(
      "POST /api HTTP/1.1\r\nContent-Length: 11\r\n\r\nhello world");
  EXPECT_EQ(req.body, "hello world");
  EXPECT_EQ(req.wire_size,
            std::string("POST /api HTTP/1.1\r\nContent-Length: 11\r\n\r\n"
                        "hello world")
                .size());
}

TEST(ParserTest, ZeroContentLength) {
  const auto req =
      parse_all("POST /api HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
  EXPECT_TRUE(req.body.empty());
}

TEST(ParserTest, ChunkedBody) {
  const auto req = parse_all(
      "POST /up HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n");
  EXPECT_EQ(req.body, "hello world");
}

TEST(ParserTest, ChunkedWithExtensionAndTrailer) {
  const auto req = parse_all(
      "POST /up HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "4;name=val\r\nabcd\r\n0\r\nX-Trailer: t\r\n\r\n");
  EXPECT_EQ(req.body, "abcd");
}

TEST(ParserTest, ByteAtATimeFeeding) {
  const std::string wire =
      "POST /a HTTP/1.1\r\nHost: x\r\nContent-Length: 3\r\n\r\nabc";
  RequestParser p;
  for (char c : wire) {
    ASSERT_FALSE(p.failed());
    EXPECT_EQ(p.feed(std::string_view{&c, 1}), 1u);
  }
  ASSERT_TRUE(p.has_request());
  const auto req = p.take();
  EXPECT_EQ(req.body, "abc");
  EXPECT_EQ(req.wire_size, wire.size());
}

TEST(ParserTest, PipelinedRequestsStopAtBoundary) {
  const std::string wire =
      "GET /one HTTP/1.1\r\n\r\nGET /two HTTP/1.1\r\n\r\n";
  RequestParser p;
  const size_t consumed = p.feed(wire);
  ASSERT_TRUE(p.has_request());
  EXPECT_LT(consumed, wire.size());  // stopped at the first boundary
  EXPECT_EQ(p.take().path, "/one");
  const size_t consumed2 = p.feed(std::string_view{wire}.substr(consumed));
  ASSERT_TRUE(p.has_request());
  EXPECT_EQ(consumed + consumed2, wire.size());
  EXPECT_EQ(p.take().path, "/two");
}

TEST(ParserTest, KeepAliveSemantics) {
  EXPECT_TRUE(parse_all("GET / HTTP/1.1\r\n\r\n").keep_alive());
  EXPECT_FALSE(
      parse_all("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").keep_alive());
  EXPECT_FALSE(parse_all("GET / HTTP/1.0\r\n\r\n").keep_alive());
  EXPECT_TRUE(parse_all("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
                  .keep_alive());
}

TEST(ParserTest, WebsocketUpgradeDetected) {
  const auto req = parse_all(
      "GET /chat HTTP/1.1\r\nUpgrade: websocket\r\nConnection: Upgrade\r\n"
      "\r\n");
  EXPECT_TRUE(req.is_websocket_upgrade());
  EXPECT_FALSE(parse_all("GET / HTTP/1.1\r\n\r\n").is_websocket_upgrade());
}

TEST(ParserTest, HeaderCaseInsensitivityAndRepeats) {
  const auto req = parse_all(
      "GET / HTTP/1.1\r\nX-Tag: one\r\nx-tag: two\r\nHOST: h\r\n\r\n");
  EXPECT_EQ(*req.headers.get("X-TAG"), "one");  // first wins for get()
  EXPECT_EQ(req.headers.get_all("x-Tag").size(), 2u);
  EXPECT_EQ(*req.host(), "h");
}

TEST(ParserTest, HeaderValueTrimmed) {
  const auto req = parse_all("GET / HTTP/1.1\r\nX:   padded value  \r\n\r\n");
  EXPECT_EQ(*req.headers.get("x"), "padded value");
}

TEST(ParserTest, ToleratesBareLf) {
  const auto req = parse_all("GET / HTTP/1.1\nHost: a\n\n");
  EXPECT_EQ(*req.host(), "a");
}

TEST(ParserTest, LeadingBlankLinesIgnored) {
  const auto req = parse_all("\r\n\r\nGET /x HTTP/1.1\r\n\r\n");
  EXPECT_EQ(req.path, "/x");
}

TEST(ParserErrorTest, MalformedRequestLine) {
  for (const char* bad :
       {"GARBAGE\r\n\r\n", "GET\r\n\r\n", "GET /\r\n\r\n",
        "GET / HTTP/11\r\n\r\n", "GET / FTP/1.1\r\n\r\n"}) {
    RequestParser p;
    p.feed(bad);
    EXPECT_TRUE(p.failed()) << bad;
  }
}

TEST(ParserErrorTest, MalformedHeaders) {
  for (const char* bad :
       {"GET / HTTP/1.1\r\nNoColon\r\n\r\n",
        "GET / HTTP/1.1\r\n: novalue\r\n\r\n",
        "GET / HTTP/1.1\r\nBad Name: x\r\n\r\n"}) {
    RequestParser p;
    p.feed(bad);
    EXPECT_TRUE(p.failed()) << bad;
  }
}

TEST(ParserErrorTest, BadContentLength) {
  RequestParser p;
  p.feed("POST / HTTP/1.1\r\nContent-Length: abc\r\n\r\n");
  EXPECT_TRUE(p.failed());
}

TEST(ParserErrorTest, OversizedBodyRejected) {
  RequestParser p;
  p.feed("POST / HTTP/1.1\r\nContent-Length: 999999999999\r\n\r\n");
  EXPECT_TRUE(p.failed());
  EXPECT_STREQ(p.error().data(), "body too large");
}

TEST(ParserErrorTest, OversizedRequestLineRejected) {
  RequestParser p;
  std::string line = "GET /";
  line.append(RequestParser::kMaxRequestLine, 'a');
  p.feed(line);
  EXPECT_TRUE(p.failed());
}

TEST(ParserErrorTest, BadChunkSize) {
  RequestParser p;
  p.feed(
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n");
  EXPECT_TRUE(p.failed());
}

TEST(ParserTest, TrailersAreCaptured) {
  const auto req = parse_all(
      "POST /up HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "3\r\nabc\r\n0\r\nX-Checksum: deadbeef\r\nX-Count: 1\r\n\r\n");
  EXPECT_EQ(req.body, "abc");
  EXPECT_EQ(req.trailers.size(), 2u);
  EXPECT_EQ(*req.trailers.get("x-checksum"), "deadbeef");
  EXPECT_EQ(*req.trailers.get("X-COUNT"), "1");
  // Trailers never masquerade as headers.
  EXPECT_FALSE(req.headers.get("x-checksum").has_value());
}

TEST(ParserTest, ChunkExtensionWithSpaceBeforeSemicolon) {
  const auto req = parse_all(
      "POST /up HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "4 ;padded=yes\r\nwxyz\r\n0\r\n\r\n");
  EXPECT_EQ(req.body, "wxyz");
}

TEST(ParserTest, IdenticalDuplicateContentLengthAccepted) {
  // RFC 9110 §8.6: identical repeated values may be coalesced.
  const auto req = parse_all(
      "POST / HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 3\r\n\r\n"
      "abc");
  EXPECT_EQ(req.body, "abc");
  const auto req2 = parse_all(
      "POST / HTTP/1.1\r\nContent-Length: 3, 3\r\n\r\nabc");
  EXPECT_EQ(req2.body, "abc");
}

TEST(ParserErrorTest, ConflictingContentLengthRejected) {
  // Different values in repeated headers or a comma list: the classic
  // request-smuggling vector. Hard error, never "pick one".
  for (const char* bad :
       {"POST / HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 4\r\n\r\n",
        "POST / HTTP/1.1\r\nContent-Length: 3, 4\r\n\r\n"}) {
    RequestParser p;
    p.feed(bad);
    EXPECT_TRUE(p.failed()) << bad;
    EXPECT_STREQ(p.error().data(), "conflicting content-length") << bad;
  }
}

TEST(ParserErrorTest, ContentLengthWithTransferEncodingRejected) {
  RequestParser p;
  p.feed(
      "POST / HTTP/1.1\r\nContent-Length: 5\r\n"
      "Transfer-Encoding: chunked\r\n\r\n");
  EXPECT_TRUE(p.failed());
  EXPECT_STREQ(p.error().data(), "content-length with transfer-encoding");
}

TEST(ParserErrorTest, UnsupportedTransferEncodingRejected) {
  RequestParser p;
  p.feed("POST / HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n");
  EXPECT_TRUE(p.failed());

  // chunked must be the FINAL coding; "chunked, gzip" would leave the
  // message un-frameable by the chunked de-framer.
  RequestParser q;
  q.feed("POST / HTTP/1.1\r\nTransfer-Encoding: chunked, gzip\r\n\r\n");
  EXPECT_TRUE(q.failed());
}

TEST(ParserErrorTest, ChunkSizeWithLeadingWhitespaceRejected) {
  RequestParser p;
  p.feed("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n 4\r\n");
  EXPECT_TRUE(p.failed());
}

TEST(ParserTest, BorrowModeViewsPointIntoCallerBuffer) {
  // stable=true + unfragmented lines: target and header views must alias
  // the fed buffer (zero copies), not parser-owned storage.
  const std::string wire = "GET /zc?a=1 HTTP/1.1\r\nHost: zc.example\r\n\r\n";
  RequestParser p;
  EXPECT_EQ(p.feed(wire, /*stable=*/true), wire.size());
  ASSERT_TRUE(p.has_request());
  const auto req = p.take();
  const char* lo = wire.data();
  const char* hi = wire.data() + wire.size();
  EXPECT_TRUE(req.target.data() >= lo && req.target.data() < hi);
  ASSERT_TRUE(req.host().has_value());
  EXPECT_TRUE(req.host()->data() >= lo && req.host()->data() < hi);
  EXPECT_EQ(req.headers.arena_blocks(), 0u);  // nothing copied
}

TEST(ParserTest, BodyCaptureOffStillFramesAndCounts) {
  const std::string wire =
      "POST /big HTTP/1.1\r\nContent-Length: 10\r\n\r\n0123456789";
  RequestParser p;
  p.set_body_capture(false);
  EXPECT_EQ(p.feed(wire), wire.size());
  ASSERT_TRUE(p.has_request());
  EXPECT_EQ(p.body_bytes(), 10u);
  const auto req = p.take();
  EXPECT_TRUE(req.body.empty());
  EXPECT_EQ(req.wire_size, wire.size());
}

TEST(ParserTest, HeaderMapArenaReuse) {
  // Many headers: inline entries spill, arena grows in blocks, and every
  // stored view stays valid (stable addresses) after the map moves.
  std::string wire = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 40; ++i) {
    wire += "X-Header-" + std::to_string(i) + ": value-" +
            std::to_string(i) + "\r\n";
  }
  wire += "\r\n";
  auto req = parse_all(wire);
  EXPECT_EQ(req.headers.size(), 40u);
  Request moved = std::move(req);
  for (int i = 0; i < 40; ++i) {
    const auto v = moved.headers.get("x-header-" + std::to_string(i));
    ASSERT_TRUE(v.has_value()) << i;
    EXPECT_EQ(*v, "value-" + std::to_string(i));
  }
}

TEST(ParserTest, TakeResetsForReuse) {
  RequestParser p;
  p.feed("GET /a HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(p.has_request());
  auto first = p.take();
  EXPECT_EQ(p.state(), RequestParser::State::RequestLine);
  p.feed("GET /b HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(p.has_request());
  EXPECT_EQ(p.take().path, "/b");
  EXPECT_EQ(first.path, "/a");
}

}  // namespace
}  // namespace hermes::http
