// Ref-counted segment/chain buffer (netsim/iobuf.h): refcount lifecycle,
// zero-copy vs copying appends, consume/copy_out, and the writable-tail
// rule that keeps shared bytes immutable.
#include "netsim/iobuf.h"

#include <gtest/gtest.h>

#include <string>

namespace hermes::netsim {
namespace {

TEST(IoSegment, AllocAppendAndRefCounting) {
  const uint64_t live_before = iobuf_stats().segments_live();
  {
    SegRef seg = IoSegment::alloc(64);
    EXPECT_EQ(seg->capacity(), 64u);
    EXPECT_EQ(seg->size(), 0u);
    EXPECT_EQ(seg->refs(), 1u);
    EXPECT_EQ(seg->append("hello", 5), 5u);
    EXPECT_EQ(seg->size(), 5u);

    SegRef other = seg;  // copy retains
    EXPECT_EQ(seg->refs(), 2u);
    other.reset();
    EXPECT_EQ(seg->refs(), 1u);
    EXPECT_EQ(iobuf_stats().segments_live(), live_before + 1);
  }
  EXPECT_EQ(iobuf_stats().segments_live(), live_before);
}

TEST(IoSegment, AppendStopsAtCapacity) {
  SegRef seg = IoSegment::alloc(4);
  EXPECT_EQ(seg->append("abcdef", 6), 4u);
  EXPECT_EQ(seg->avail(), 0u);
  EXPECT_EQ(std::string(seg->data(), seg->size()), "abcd");
}

TEST(IoChain, AppendCopyAndToString) {
  IoChain c;
  c.append_copy(std::string_view{"hello "});
  c.append_copy(std::string_view{"world"});
  EXPECT_EQ(c.size(), 11u);
  EXPECT_EQ(c.to_string(), "hello world");
  // Contiguous copies into the same writable tail stay one slice.
  EXPECT_EQ(c.num_slices(), 1u);
}

TEST(IoChain, AppendRefSharesBytesWithoutCopy) {
  SegRef seg = IoSegment::alloc(64);
  seg->append("abcdefgh", 8);

  const uint64_t copied_before = iobuf_stats().bytes_copied;
  IoChain a;
  a.append_ref(seg, 0, 4);
  a.append_ref(seg, 4, 4);  // contiguous: coalesces
  EXPECT_EQ(a.num_slices(), 1u);
  EXPECT_EQ(a.to_string().substr(0, 8), "abcdefgh");
  EXPECT_EQ(iobuf_stats().bytes_copied, copied_before);  // no memcpy
  EXPECT_EQ(seg->refs(), 2u);  // seg + the chain's coalesced slice
}

TEST(IoChain, RefAppendKeepsSegmentAliveAfterSourceDrops) {
  IoChain dst;
  {
    SegRef seg = IoSegment::alloc(16);
    seg->append("payload", 7);
    dst.append_ref(seg, 0, 7);
  }  // source handle gone; chain still owns the bytes
  EXPECT_EQ(dst.to_string(), "payload");
}

TEST(IoChain, SharedTailIsNotWritable) {
  // Writing into a segment another chain can see would corrupt shared
  // bytes; append_copy must allocate a fresh segment instead.
  IoChain a;
  a.append_copy(std::string_view{"aaaa"});
  IoChain b;
  b.append_ref(a.slices()[0]);
  a.append_copy(std::string_view{"bbbb"});  // tail shared with b → new seg
  EXPECT_EQ(a.to_string(), "aaaabbbb");
  EXPECT_EQ(b.to_string(), "aaaa");  // b unchanged
  EXPECT_EQ(a.num_slices(), 2u);
}

TEST(IoChain, ConsumeAdvancesAcrossSlices) {
  IoChain c;
  SegRef s1 = IoSegment::alloc(8);
  s1->append("0123", 4);
  SegRef s2 = IoSegment::alloc(8);
  s2->append("4567", 4);
  c.append_ref(s1, 0, 4);
  c.append_ref(s2, 0, 4);
  c.consume(2);
  EXPECT_EQ(c.to_string(), "234567");
  c.consume(3);
  EXPECT_EQ(c.to_string(), "567");
  c.consume(3);
  EXPECT_TRUE(c.empty());
}

TEST(IoChain, CopyOutWindow) {
  IoChain c;
  c.append_copy(std::string_view{"abcdefghij"});
  char buf[4];
  c.copy_out(3, 4, buf);
  EXPECT_EQ(std::string(buf, 4), "defg");
}

TEST(IoChain, FnvMatchesFlatHash) {
  const std::string flat = "GET / HTTP/1.1\r\nHost: x\r\n\r\n";
  IoChain c;
  // Fragment the bytes across several slices; hash must equal the flat's.
  for (size_t i = 0; i < flat.size(); i += 5) {
    SegRef seg = IoSegment::alloc(8);
    const uint32_t n =
        static_cast<uint32_t>(std::min<size_t>(5, flat.size() - i));
    seg->append(flat.data() + i, n);
    c.append_ref(seg, 0, n);
  }
  EXPECT_EQ(c.fnv1a(), fnv1a_bytes(flat));
}

TEST(IoChain, StatsAccounting) {
  iobuf_stats().reset();
  IoChain c;
  c.append_copy(std::string_view{"12345"});
  SegRef seg = IoSegment::alloc(16);
  seg->append("abc", 3);
  c.append_ref(seg, 0, 3);
  EXPECT_EQ(iobuf_stats().bytes_copied, 5u);
  EXPECT_EQ(iobuf_stats().bytes_referenced, 3u);
  EXPECT_GE(iobuf_stats().segments_allocated, 2u);
}

}  // namespace
}  // namespace hermes::netsim
