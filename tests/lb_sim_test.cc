// Integration tests: the full LB simulation reproduces the paper's
// qualitative phenomena — LIFO concentration under epoll exclusive,
// reuseport's spread and its blindness to hung workers, Hermes's balanced,
// hang-aware dispatch.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/lb.h"
#include "sim/probe.h"

namespace hermes::sim {
namespace {

LbDevice::Config base_config(netsim::DispatchMode mode, uint64_t seed = 1) {
  LbDevice::Config cfg;
  cfg.mode = mode;
  cfg.num_workers = 4;
  cfg.num_ports = 4;
  cfg.seed = seed;
  return cfg;
}

std::vector<int64_t> conns_per_worker(LbDevice& lb) {
  std::vector<int64_t> v;
  for (WorkerId w = 0; w < lb.num_workers(); ++w) {
    v.push_back(lb.worker(w).live_connections());
  }
  return v;
}

std::vector<uint64_t> accepts_per_worker(LbDevice& lb) {
  std::vector<uint64_t> v;
  for (WorkerId w = 0; w < lb.num_workers(); ++w) {
    v.push_back(lb.worker(w).accepts_done());
  }
  return v;
}

TEST(LbSimTest, IdleLbOnlyTicksHeartbeats) {
  LbDevice lb(base_config(netsim::DispatchMode::HermesMode));
  lb.eq().run_until(SimTime::seconds(1));
  EXPECT_EQ(lb.totals().requests_completed, 0u);
  // Each worker wakes every 5ms: ~200 iterations each.
  for (WorkerId w = 0; w < lb.num_workers(); ++w) {
    EXPECT_NEAR(static_cast<double>(lb.worker(w).loop_iterations()), 200, 10);
  }
  // Scheduler ran on every iteration (Fig. 14's baseline frequency).
  EXPECT_GT(lb.hermes()->counters().schedules, 700u);
}

TEST(LbSimTest, SingleConnectionCompletesWithPlausibleLatency) {
  LbDevice lb(base_config(netsim::DispatchMode::HermesMode));
  LbDevice::ConnPlan plan;
  plan.tenant = 0;
  plan.remaining = 1;
  plan.cost_us = DistSpec::constant(200);
  ASSERT_NE(lb.open_connection(0, plan), 0u);
  lb.eq().run_until(SimTime::seconds(1));
  EXPECT_EQ(lb.totals().requests_completed, 1u);
  // Latency = accept wakeup + accept cost + processing, well under 1 ms.
  EXPECT_GT(lb.latency().max_value(), SimTime::micros(200).ns());
  EXPECT_LT(lb.latency().max_value(), SimTime::millis(1).ns());
  EXPECT_EQ(lb.live_connections(), 0u);
}

TEST(LbSimTest, KeepAliveConnectionRunsAllRequests) {
  LbDevice lb(base_config(netsim::DispatchMode::Reuseport));
  LbDevice::ConnPlan plan;
  plan.remaining = 10;
  plan.cost_us = DistSpec::constant(100);
  plan.gap_us = DistSpec::constant(1000);
  ASSERT_NE(lb.open_connection(0, plan), 0u);
  lb.eq().run_until(SimTime::seconds(1));
  EXPECT_EQ(lb.totals().requests_completed, 10u);
  EXPECT_EQ(lb.live_connections(), 0u);
}

TEST(LbSimTest, ExclusiveConcentratesConnectionsLifo) {
  // Case-3-style long-lived connections at light load: the LIFO wakeup
  // sends nearly everything to the last-registered worker (highest id).
  auto cfg = base_config(netsim::DispatchMode::EpollExclusive);
  LbDevice lb(cfg);
  LbDevice::ConnPlan plan;
  plan.remaining = 100;                      // long-lived
  plan.cost_us = DistSpec::constant(50);     // light
  plan.gap_us = DistSpec::exponential(200'000);
  for (int i = 0; i < 200; ++i) {
    const SimTime at = SimTime::millis(2 * i);
    lb.eq().schedule_at(at, [&lb, plan, i] {
      lb.open_connection(static_cast<TenantId>(i % 4), plan);
    });
  }
  lb.eq().run_until(SimTime::seconds(1));
  const auto accepts = accepts_per_worker(lb);
  const uint64_t top = *std::max_element(accepts.begin(), accepts.end());
  const uint64_t total = 200;
  // The head worker (id 3) hoards the vast majority.
  EXPECT_EQ(accepts[3], top);
  EXPECT_GT(static_cast<double>(top) / total, 0.8);
}

TEST(LbSimTest, ReuseportSpreadsConnections) {
  LbDevice lb(base_config(netsim::DispatchMode::Reuseport));
  LbDevice::ConnPlan plan;
  plan.remaining = 100;
  plan.cost_us = DistSpec::constant(50);
  plan.gap_us = DistSpec::exponential(200'000);
  for (int i = 0; i < 400; ++i) {
    lb.eq().schedule_at(SimTime::millis(i), [&lb, plan, i] {
      lb.open_connection(static_cast<TenantId>(i % 4), plan);
    });
  }
  lb.eq().run_until(SimTime::seconds(1));
  const auto accepts = accepts_per_worker(lb);
  for (uint64_t a : accepts) {
    EXPECT_NEAR(static_cast<double>(a), 100.0, 45.0);  // hash spread
  }
}

TEST(LbSimTest, HermesSpreadsConnectionsTighter) {
  LbDevice lb(base_config(netsim::DispatchMode::HermesMode));
  LbDevice::ConnPlan plan;
  plan.remaining = 100;
  plan.cost_us = DistSpec::constant(50);
  plan.gap_us = DistSpec::exponential(200'000);
  for (int i = 0; i < 400; ++i) {
    lb.eq().schedule_at(SimTime::millis(i), [&lb, plan, i] {
      lb.open_connection(static_cast<TenantId>(i % 4), plan);
    });
  }
  lb.eq().run_until(SimTime::seconds(1));
  // Hermes's conn-count filter keeps the distribution tight (paper Fig. 13:
  // conn SD 20 vs reuseport 50 vs exclusive 3200).
  const auto conns = conns_per_worker(lb);
  const auto [mn, mx] = std::minmax_element(conns.begin(), conns.end());
  EXPECT_LE(*mx - *mn, 30);
  EXPECT_GT(lb.netstack().group(lb.config().first_port)->stats().bpf_selections,
            0u);
}

TEST(LbSimTest, HermesBypassesHungWorker) {
  auto cfg = base_config(netsim::DispatchMode::HermesMode);
  LbDevice lb(cfg);

  // Poison one connection so its owner wedges for 2 seconds.
  LbDevice::ConnPlan poison;
  poison.remaining = 1;
  poison.cost_us = DistSpec::constant(2'000'000);
  ASSERT_NE(lb.open_connection(0, poison), 0u);
  lb.eq().run_until(SimTime::millis(100));

  // Identify the wedged worker: the one not blocked.
  WorkerId hung = kInvalidWorker;
  for (WorkerId w = 0; w < lb.num_workers(); ++w) {
    if (!lb.worker(w).blocked()) hung = w;
  }
  ASSERT_NE(hung, kInvalidWorker);

  // Now open many short connections; none should land on the hung worker
  // (Hermes), because its loop-entry timestamp is stale.
  const uint64_t before = lb.worker(hung).accepts_done();
  LbDevice::ConnPlan quick;
  quick.remaining = 1;
  quick.cost_us = DistSpec::constant(100);
  for (int i = 0; i < 200; ++i) {
    lb.eq().schedule_at(SimTime::millis(101 + i), [&lb, quick, i] {
      lb.open_connection(static_cast<TenantId>(i % 4), quick);
    });
  }
  lb.eq().run_until(SimTime::millis(400));
  EXPECT_EQ(lb.worker(hung).accepts_done(), before);
  EXPECT_GE(lb.totals().requests_completed, 200u);
}

TEST(LbSimTest, ReuseportKeepsFeedingHungWorker) {
  LbDevice lb(base_config(netsim::DispatchMode::Reuseport));
  LbDevice::ConnPlan poison;
  poison.remaining = 1;
  poison.cost_us = DistSpec::constant(2'000'000);
  ASSERT_NE(lb.open_connection(0, poison), 0u);
  lb.eq().run_until(SimTime::millis(100));

  WorkerId hung = kInvalidWorker;
  for (WorkerId w = 0; w < lb.num_workers(); ++w) {
    if (!lb.worker(w).blocked()) hung = w;
  }
  ASSERT_NE(hung, kInvalidWorker);

  LbDevice::ConnPlan quick;
  quick.remaining = 1;
  quick.cost_us = DistSpec::constant(100);
  for (int i = 0; i < 400; ++i) {
    lb.eq().schedule_at(SimTime::millis(101 + i / 2), [&lb, quick, i] {
      lb.open_connection(static_cast<TenantId>(i % 4), quick);
    });
  }
  lb.eq().run_until(SimTime::millis(400));
  // Stateless hashing still queues connections on the hung worker's socket.
  const size_t queued =
      lb.netstack().worker_socket(lb.config().first_port, hung) == nullptr
          ? 0
          : [&] {
              size_t total = 0;
              for (uint32_t p = 0; p < lb.config().num_ports; ++p) {
                total += lb.netstack()
                             .worker_socket(static_cast<PortId>(
                                                lb.config().first_port + p),
                                            hung)
                             ->accept_queue()
                             .size();
              }
              return total;
            }();
  EXPECT_GT(queued, 0u);
}

TEST(LbSimTest, PatternDriverGeneratesExpectedVolume) {
  auto cfg = base_config(netsim::DispatchMode::HermesMode);
  LbDevice lb(cfg);
  TrafficPattern p = case_pattern(1, /*workers=*/4, /*load=*/0.5);
  lb.start_pattern(p, 0, 4, SimTime::seconds(2));
  lb.eq().run_until(SimTime::seconds(3));
  const double expected = p.cps * 2.0;
  EXPECT_NEAR(static_cast<double>(lb.totals().conns_opened), expected,
              expected * 0.15);
  // Underloaded: essentially everything completes.
  EXPECT_GT(lb.totals().requests_completed,
            lb.totals().requests_generated * 95 / 100);
}

TEST(LbSimTest, DeterministicForSeed) {
  auto run = [](uint64_t seed) {
    LbDevice lb(base_config(netsim::DispatchMode::HermesMode, seed));
    lb.start_pattern(case_pattern(3, 4, 1.0), 0, 4, SimTime::seconds(1));
    lb.eq().run_until(SimTime::seconds(2));
    return std::tuple{lb.totals().requests_completed,
                      lb.totals().conns_opened, lb.latency().p99()};
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(LbSimTest, SamplerTracksUtilization) {
  LbDevice lb(base_config(netsim::DispatchMode::HermesMode));
  lb.start_pattern(case_pattern(1, 4, 1.0), 0, 4, SimTime::seconds(2));
  lb.start_sampling(SimTime::millis(500), SimTime::seconds(2));
  lb.eq().run_until(SimTime::seconds(2));
  ASSERT_GE(lb.samples().size(), 3u);
  // Under case-1 load the LB is busy but not saturated.
  const auto& s = lb.samples().back();
  EXPECT_GT(s.cpu_avg, 0.05);
  EXPECT_LT(s.cpu_avg, 0.95);
  EXPECT_GE(s.cpu_max, s.cpu_avg);
  EXPECT_LE(s.cpu_min, s.cpu_avg);
}

TEST(LbSimTest, BurstDeliversToAllLiveConnections) {
  LbDevice lb(base_config(netsim::DispatchMode::Reuseport));
  LbDevice::ConnPlan plan;
  plan.remaining = 2;  // stays open waiting for a 2nd request
  plan.cost_us = DistSpec::constant(100);
  plan.gap_us = DistSpec::constant(10'000'000);  // long think time
  for (int i = 0; i < 50; ++i) {
    lb.open_connection(static_cast<TenantId>(i % 4), plan);
  }
  lb.eq().run_until(SimTime::millis(500));
  const uint64_t before = lb.totals().requests_generated;
  lb.eq().schedule_at(SimTime::millis(600), [&lb] {
    lb.burst_all_connections(DistSpec::constant(200), 2);
  });
  lb.eq().run_until(SimTime::millis(700));
  EXPECT_EQ(lb.totals().requests_generated, before + 100);
}

TEST(LbSimTest, ProbeCountsDelayedProbes) {
  LbDevice lb(base_config(netsim::DispatchMode::Reuseport));
  // Wedge all workers with poison, then probe.
  LbDevice::ConnPlan poison;
  poison.remaining = 1;
  poison.cost_us = DistSpec::constant(3'000'000);
  for (int i = 0; i < 16; ++i) {
    lb.open_connection(static_cast<TenantId>(i % 4), poison);
  }
  Prober::Config pc;
  pc.period = SimTime::millis(100);
  Prober prober(lb, pc);
  prober.start(SimTime::seconds(2));
  lb.eq().run_until(SimTime::seconds(4));
  EXPECT_GT(prober.probes_sent(), 10u);
  EXPECT_GT(prober.delayed(), 0u);
}

TEST(LbSimTest, DegradationSweepMovesConnectionsOffHungWorker) {
  auto cfg = base_config(netsim::DispatchMode::HermesMode);
  cfg.hermes.degradation_after = SimTime::millis(200);
  cfg.hermes.degradation_reset_fraction = 0.5;
  LbDevice lb(cfg);

  // Long-lived connections concentrated by construction: open some, then
  // wedge one worker with poison.
  LbDevice::ConnPlan longlived;
  longlived.remaining = 5;
  longlived.cost_us = DistSpec::constant(100);
  longlived.gap_us = DistSpec::constant(5'000'000);
  for (int i = 0; i < 40; ++i) {
    lb.open_connection(static_cast<TenantId>(i % 4), longlived);
  }
  lb.eq().run_until(SimTime::millis(50));

  LbDevice::ConnPlan poison;
  poison.remaining = 1;
  poison.cost_us = DistSpec::constant(5'000'000);
  lb.open_connection(0, poison);
  lb.eq().run_until(SimTime::millis(100));

  // Sweep periodically; after the hang threshold, resets should fire.
  for (int t = 1; t <= 20; ++t) {
    lb.eq().schedule_at(SimTime::millis(100 + 100 * t),
                        [&lb] { lb.run_degradation_sweep(); });
  }
  lb.eq().run_until(SimTime::seconds(3));
  EXPECT_GT(lb.totals().degradation_resets, 0u);
}

TEST(LbSimTest, SynRetransmissionRecoversDroppedConnections) {
  auto cfg = base_config(netsim::DispatchMode::Reuseport);
  cfg.num_workers = 1;
  cfg.num_ports = 1;
  cfg.backlog = 2;
  cfg.syn_retries = 3;
  cfg.syn_retry_timeout = SimTime::millis(100);
  LbDevice lb(cfg);

  // Burst of 6 instant SYNs into a backlog of 2: 4 drop, then retry.
  LbDevice::ConnPlan plan;
  plan.remaining = 1;
  plan.cost_us = DistSpec::constant(100);
  for (int i = 0; i < 6; ++i) lb.open_connection(0, plan);
  EXPECT_EQ(lb.totals().conns_dropped, 4u);
  EXPECT_EQ(lb.totals().syn_retransmits, 4u);

  lb.eq().run_until(SimTime::seconds(3));
  // Retries eventually land everything.
  EXPECT_EQ(lb.totals().requests_completed, 6u);
  // The late connections' latency includes the retry backoff: well over
  // the 100 ms first backoff, measured from the ORIGINAL SYN.
  EXPECT_GT(lb.latency().max_value(), SimTime::millis(100).ns());
}

TEST(LbSimTest, SynRetriesExhaustAndGiveUp) {
  auto cfg = base_config(netsim::DispatchMode::Reuseport);
  cfg.num_workers = 1;
  cfg.num_ports = 1;
  cfg.backlog = 1;
  cfg.syn_retries = 2;
  cfg.syn_retry_timeout = SimTime::millis(50);
  LbDevice lb(cfg);

  // Wedge the lone worker so the backlog never drains, then flood.
  LbDevice::ConnPlan poison;
  poison.remaining = 1;
  poison.cost_us = DistSpec::constant(10'000'000);
  lb.open_connection(0, poison);
  lb.eq().run_until(SimTime::millis(10));
  LbDevice::ConnPlan plan;
  for (int i = 0; i < 4; ++i) lb.open_connection(0, plan);
  lb.eq().run_until(SimTime::seconds(2));
  // Each dropped SYN retried at most twice, then gave up for good.
  EXPECT_LE(lb.totals().syn_retransmits, 8u);
  EXPECT_GT(lb.totals().conns_dropped, 4u);
}

}  // namespace
}  // namespace hermes::sim
