// Direct unit tests for the eBPF map objects (ArrayMap, ReuseportSockArray)
// including the lock-free u64 path Hermes uses for decision sync.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "bpf/maps.h"

namespace hermes::bpf {
namespace {

TEST(ArrayMapTest, UpdateReadRoundTrip) {
  ArrayMap m(4, 8);
  const uint64_t v = 0xdeadbeefcafef00dull;
  EXPECT_TRUE(m.update(2, &v));
  uint64_t out = 0;
  EXPECT_TRUE(m.read(2, &out));
  EXPECT_EQ(out, v);
}

TEST(ArrayMapTest, OutOfRangeKeyFails) {
  ArrayMap m(4, 8);
  const uint64_t v = 1;
  EXPECT_FALSE(m.update(4, &v));
  uint64_t out;
  EXPECT_FALSE(m.read(100, &out));
  EXPECT_EQ(m.lookup(4), nullptr);
}

TEST(ArrayMapTest, ValidKeysNeverNull) {
  ArrayMap m(3, 8);
  for (uint32_t k = 0; k < 3; ++k) EXPECT_NE(m.lookup(k), nullptr);
}

TEST(ArrayMapTest, ElementsZeroInitialized) {
  ArrayMap m(2, 8);
  uint64_t out = 123;
  ASSERT_TRUE(m.read(1, &out));
  EXPECT_EQ(out, 0u);
}

TEST(ArrayMapTest, OddValueSizesRoundUpStride) {
  ArrayMap m(3, 5);  // 5-byte values: stride rounds to 8
  EXPECT_EQ(m.stride(), 8u);
  const uint8_t v[5] = {1, 2, 3, 4, 5};
  EXPECT_TRUE(m.update(1, v));
  uint8_t out[5] = {};
  EXPECT_TRUE(m.read(1, out));
  EXPECT_EQ(out[4], 5);
  // Neighbours untouched.
  uint8_t other[5] = {9};
  ASSERT_TRUE(m.read(0, other));
  EXPECT_EQ(other[0], 0);
}

TEST(ArrayMapTest, AtomicU64StoreLoad) {
  ArrayMap m(1, 8);
  m.store_u64(0, 0x1122334455667788ull);
  EXPECT_EQ(m.load_u64(0), 0x1122334455667788ull);
}

TEST(ArrayMapTest, ConcurrentStoresNeverTear) {
  // Two writers alternate full-word patterns; a reader must only ever see
  // one of the two patterns (8-byte atomicity).
  ArrayMap m(1, 8);
  constexpr uint64_t kA = 0xAAAAAAAAAAAAAAAAull;
  constexpr uint64_t kB = 0x5555555555555555ull;
  std::atomic<bool> stop{false};
  std::atomic<bool> torn{false};
  std::thread w1([&] {
    while (!stop) m.store_u64(0, kA);
  });
  std::thread w2([&] {
    while (!stop) m.store_u64(0, kB);
  });
  std::thread r([&] {
    for (int i = 0; i < 2'000'000; ++i) {
      const uint64_t v = m.load_u64(0);
      if (v != kA && v != kB && v != 0) torn = true;
    }
    stop = true;
  });
  r.join();
  w1.join();
  w2.join();
  EXPECT_FALSE(torn.load());
}

TEST(SockArrayTest, UpdateGetRemove) {
  ReuseportSockArray sa(4);
  EXPECT_EQ(sa.get(1), kNoSocket);
  EXPECT_TRUE(sa.update(1, 777));
  EXPECT_EQ(sa.get(1), 777u);
  EXPECT_TRUE(sa.remove(1));
  EXPECT_EQ(sa.get(1), kNoSocket);
}

TEST(SockArrayTest, OutOfRangeRejected) {
  ReuseportSockArray sa(2);
  EXPECT_FALSE(sa.update(2, 1));
  EXPECT_FALSE(sa.remove(5));
  EXPECT_EQ(sa.get(9), kNoSocket);
}

TEST(MapMetadataTest, TypesAndSizes) {
  ArrayMap a(7, 12);
  EXPECT_EQ(a.type(), MapType::Array);
  EXPECT_EQ(a.max_entries(), 7u);
  EXPECT_EQ(a.value_size(), 12u);
  ReuseportSockArray sa(3);
  EXPECT_EQ(sa.type(), MapType::ReuseportSockArray);
  EXPECT_EQ(sa.value_size(), 8u);
}

}  // namespace
}  // namespace hermes::bpf
