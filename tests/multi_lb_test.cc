// Multi-device cluster: L4 spraying, canary draining, lockstep time.
#include <gtest/gtest.h>

#include "sim/multi_lb.h"

namespace hermes::sim {
namespace {

LbDevice::Config base_cfg() {
  LbDevice::Config cfg;
  cfg.num_workers = 4;
  cfg.num_ports = 4;
  cfg.seed = 5;
  return cfg;
}

MultiLbCluster make_cluster(int n, netsim::DispatchMode mode) {
  std::vector<MultiLbCluster::DeviceSpec> specs;
  for (int i = 0; i < n; ++i) {
    specs.push_back({mode, 100 + static_cast<uint64_t>(i)});
  }
  return MultiLbCluster(specs, base_cfg());
}

TEST(MultiLbTest, SpraysAcrossAllDevices) {
  auto cluster = make_cluster(4, netsim::DispatchMode::HermesMode);
  LbDevice::ConnPlan plan;
  plan.cost_us = DistSpec::constant(100);
  std::vector<int> per_dev(4, 0);
  for (int i = 0; i < 800; ++i) {
    const size_t dev = cluster.open_connection(0, plan);
    ASSERT_LT(dev, 4u);
    ++per_dev[dev];
  }
  for (int n : per_dev) EXPECT_NEAR(n, 200, 70);
  cluster.run_until(SimTime::seconds(1));
  EXPECT_EQ(cluster.total_completed(), 800u);
}

TEST(MultiLbTest, DrainingDeviceGetsNoNewConnections) {
  auto cluster = make_cluster(3, netsim::DispatchMode::HermesMode);
  cluster.start_draining(1);
  LbDevice::ConnPlan plan;
  for (int i = 0; i < 300; ++i) {
    const size_t dev = cluster.open_connection(0, plan);
    EXPECT_NE(dev, 1u);
  }
  EXPECT_EQ(cluster.device(1).totals().conns_opened, 0u);
}

TEST(MultiLbTest, DrainingDeviceFinishesExistingConnections) {
  auto cluster = make_cluster(2, netsim::DispatchMode::HermesMode);
  // Long-lived conns everywhere, then drain device 0.
  LbDevice::ConnPlan plan;
  plan.remaining = 5;
  plan.cost_us = DistSpec::constant(100);
  plan.gap_us = DistSpec::constant(100'000);
  for (int i = 0; i < 100; ++i) cluster.open_connection(0, plan);
  cluster.run_until(SimTime::millis(50));
  const uint64_t live_before = cluster.device(0).live_connections();
  cluster.start_draining(0);
  // Existing connections on device 0 still complete their requests.
  cluster.run_until(SimTime::seconds(2));
  EXPECT_GT(live_before, 0u);
  EXPECT_EQ(cluster.device(0).live_connections(), 0u);
  EXPECT_GT(cluster.device(0).totals().requests_completed, 0u);
}

TEST(MultiLbTest, AllDrainingRoutesNowhere) {
  auto cluster = make_cluster(2, netsim::DispatchMode::Reuseport);
  cluster.start_draining(0);
  cluster.start_draining(1);
  LbDevice::ConnPlan plan;
  EXPECT_EQ(cluster.open_connection(0, plan), SIZE_MAX);
}

TEST(MultiLbTest, LockstepKeepsClocksAligned) {
  auto cluster = make_cluster(3, netsim::DispatchMode::EpollExclusive);
  cluster.run_until(SimTime::seconds(1), SimTime::millis(50));
  for (size_t i = 0; i < cluster.size(); ++i) {
    EXPECT_EQ(cluster.device(i).eq().now(), SimTime::seconds(1));
  }
  EXPECT_EQ(cluster.now(), SimTime::seconds(1));
}

TEST(MultiLbTest, RoutingIsHashConsistent) {
  auto cluster = make_cluster(4, netsim::DispatchMode::HermesMode);
  for (uint32_t h : {0u, 123456u, 0xffffffffu}) {
    EXPECT_EQ(cluster.route(h), cluster.route(h));
    EXPECT_LT(cluster.route(h), 4u);
  }
}

TEST(MultiLbTest, SandboxPinOverridesRotation) {
  auto cluster = make_cluster(3, netsim::DispatchMode::HermesMode);
  cluster.start_draining(2);  // device 2 = sandbox, out of rotation
  cluster.migrate_tenant(7, 2);
  LbDevice::ConnPlan plan;
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(cluster.open_connection(7, plan), 2u);   // pinned tenant
    EXPECT_NE(cluster.open_connection(1, plan), 2u);   // others never
  }
  EXPECT_TRUE(cluster.tenant_pinned(7));
  EXPECT_EQ(cluster.device(2).totals().conns_opened, 50u);
}

TEST(MultiLbTest, UnpinRestoresNormalRouting) {
  auto cluster = make_cluster(2, netsim::DispatchMode::HermesMode);
  cluster.migrate_tenant(3, 1);
  LbDevice::ConnPlan plan;
  EXPECT_EQ(cluster.open_connection(3, plan), 1u);
  cluster.unpin_tenant(3);
  EXPECT_FALSE(cluster.tenant_pinned(3));
  // Routing goes back through the hash (device 0 reachable again).
  bool saw_dev0 = false;
  for (int i = 0; i < 100 && !saw_dev0; ++i) {
    saw_dev0 = cluster.open_connection(3, plan) == 0;
  }
  EXPECT_TRUE(saw_dev0);
}

TEST(MultiLbTest, CloseFractionShedsRoughlyThatShare) {
  auto cluster = make_cluster(1, netsim::DispatchMode::HermesMode);
  LbDevice::ConnPlan plan;
  plan.remaining = 100;
  plan.gap_us = DistSpec::constant(10'000'000);
  for (int i = 0; i < 400; ++i) cluster.open_connection(0, plan);
  cluster.run_until(SimTime::millis(200));
  const uint64_t before = cluster.device(0).live_connections();
  const uint64_t shed = cluster.device(0).close_fraction(0.5);
  EXPECT_NEAR(static_cast<double>(shed), before * 0.5, before * 0.12);
  EXPECT_EQ(cluster.device(0).live_connections(), before - shed);
}

}  // namespace
}  // namespace hermes::sim
