// Kernel substrate: jhash, accept queues, wakeup disciplines, reuseport
// selection, and NetStack dispatch across all modes.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "netsim/netstack.h"
#include "simcore/rng.h"

namespace hermes::netsim {
namespace {

FourTuple tuple_of(uint32_t client, uint16_t sport, uint16_t dport) {
  return FourTuple{client, 0x0a000001, sport, dport};
}

// ------------------------------------------------------------------ hash

TEST(JhashTest, DeterministicAndSpreads) {
  const FourTuple a = tuple_of(1, 1000, 80);
  const FourTuple b = tuple_of(1, 1001, 80);
  EXPECT_EQ(skb_hash(a), skb_hash(a));
  EXPECT_NE(skb_hash(a), skb_hash(b));  // near-certain for jhash
}

TEST(JhashTest, UniformBucketSpread) {
  sim::Rng rng(1);
  constexpr uint32_t kBuckets = 16;
  uint64_t counts[kBuckets] = {};
  constexpr int kSamples = 160000;
  for (int i = 0; i < kSamples; ++i) {
    const FourTuple t = tuple_of(static_cast<uint32_t>(rng.next_u64()),
                                 static_cast<uint16_t>(rng.next_u64()), 80);
    ++counts[reciprocal_scale(skb_hash(t), kBuckets)];
  }
  for (uint64_t c : counts) {
    EXPECT_NEAR(static_cast<double>(c), kSamples / 16.0, kSamples / 16.0 * 0.05);
  }
}

TEST(JhashTest, LocalityHashIgnoresSource) {
  const FourTuple a = tuple_of(1, 1000, 443);
  const FourTuple b = tuple_of(99, 2000, 443);
  EXPECT_EQ(locality_hash(a), locality_hash(b));  // same daddr/dport
  FourTuple c = a;
  c.dport = 444;
  EXPECT_NE(locality_hash(a), locality_hash(c));
}

// ----------------------------------------------------------- AcceptQueue

TEST(AcceptQueueTest, FifoOrder) {
  ConnSlab slab;
  AcceptQueue q(4);
  const Connection c1 = slab.create(1, FourTuple{}, 80, 0, SimTime::zero());
  const Connection c2 = slab.create(2, FourTuple{}, 80, 0, SimTime::zero());
  EXPECT_TRUE(q.push(c1));
  EXPECT_TRUE(q.push(c2));
  EXPECT_EQ(q.pop().id(), 1u);
  EXPECT_EQ(q.pop().id(), 2u);
  EXPECT_FALSE(q.pop().valid());
}

TEST(AcceptQueueTest, BacklogOverflowDrops) {
  ConnSlab slab;
  AcceptQueue q(2);
  Connection c[3];
  for (int i = 0; i < 3; ++i) {
    c[i] = slab.create(static_cast<ConnId>(i + 1), FourTuple{}, 80, 0,
                       SimTime::zero());
  }
  EXPECT_TRUE(q.push(c[0]));
  EXPECT_TRUE(q.push(c[1]));
  EXPECT_FALSE(q.push(c[2]));
  EXPECT_EQ(q.dropped(), 1u);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.high_watermark(), 2u);
}

// ------------------------------------------------------------- WaitQueue

class RecordingWaiter : public Waiter {
 public:
  explicit RecordingWaiter(bool idle) : idle_(idle) {}
  bool try_wake(ListeningSocket&) override {
    ++wakeups_;
    return idle_;
  }
  bool idle_;
  int wakeups_ = 0;
};

TEST(WaitQueueTest, ExclusiveLifoWakesMostRecentlyAddedIdle) {
  // Registration order w0, w1, w2: w2 is at the head (epoll_ctl prepends).
  WaitQueue q;
  RecordingWaiter w0(true), w1(true), w2(true);
  ListeningSocket sock(80, 16);
  q.add(&w0);
  q.add(&w1);
  q.add(&w2);
  const auto stats = q.wake(sock, WakePolicy::ExclusiveLifo);
  EXPECT_EQ(stats.woken, 1);
  EXPECT_EQ(w2.wakeups_, 1);  // the LIFO favourite
  EXPECT_EQ(w1.wakeups_, 0);
  EXPECT_EQ(w0.wakeups_, 0);
  // Again: still w2 — this is the concentration pathology.
  q.wake(sock, WakePolicy::ExclusiveLifo);
  EXPECT_EQ(w2.wakeups_, 2);
}

TEST(WaitQueueTest, ExclusiveLifoSkipsBusyHead) {
  WaitQueue q;
  RecordingWaiter w0(true), w1(false), w2(false);  // head w2 busy, w1 busy
  ListeningSocket sock(80, 16);
  q.add(&w0);
  q.add(&w1);
  q.add(&w2);
  const auto stats = q.wake(sock, WakePolicy::ExclusiveLifo);
  EXPECT_EQ(stats.woken, 1);
  EXPECT_EQ(w0.wakeups_, 1);  // first idle from the head
}

TEST(WaitQueueTest, ExclusiveRrRotates) {
  WaitQueue q;
  RecordingWaiter w0(true), w1(true), w2(true);
  ListeningSocket sock(80, 16);
  q.add(&w0);
  q.add(&w1);
  q.add(&w2);  // head order: w2, w1, w0
  q.wake(sock, WakePolicy::ExclusiveRr);
  q.wake(sock, WakePolicy::ExclusiveRr);
  q.wake(sock, WakePolicy::ExclusiveRr);
  // Each got exactly one wakeup — fair.
  EXPECT_EQ(w0.wakeups_, 1);
  EXPECT_EQ(w1.wakeups_, 1);
  EXPECT_EQ(w2.wakeups_, 1);
}

TEST(WaitQueueTest, WakeAllIsThunderingHerd) {
  WaitQueue q;
  RecordingWaiter w0(true), w1(true), w2(true), w3(false);
  ListeningSocket sock(80, 16);
  q.add(&w0);
  q.add(&w1);
  q.add(&w2);
  q.add(&w3);
  const auto stats = q.wake(sock, WakePolicy::WakeAll);
  // All idle waiters woke; one wins, two are wasted; busy one slept on.
  EXPECT_EQ(stats.woken, 1);
  EXPECT_EQ(stats.wasted_wakeups, 2);
  EXPECT_EQ(w0.wakeups_ + w1.wakeups_ + w2.wakeups_, 3);
  EXPECT_EQ(w3.wakeups_, 1);  // woken but reported busy
}

TEST(WaitQueueTest, NoIdleWaitersWakesNobody) {
  WaitQueue q;
  RecordingWaiter w0(false), w1(false);
  ListeningSocket sock(80, 16);
  q.add(&w0);
  q.add(&w1);
  const auto stats = q.wake(sock, WakePolicy::ExclusiveLifo);
  EXPECT_EQ(stats.woken, 0);
}

TEST(WaitQueueTest, RemoveUnregisters) {
  WaitQueue q;
  RecordingWaiter w0(true), w1(true);
  ListeningSocket sock(80, 16);
  q.add(&w0);
  q.add(&w1);
  q.remove(&w1);
  q.wake(sock, WakePolicy::ExclusiveLifo);
  EXPECT_EQ(w1.wakeups_, 0);
  EXPECT_EQ(w0.wakeups_, 1);
}

// --------------------------------------------------------- ReuseportGroup

TEST(ReuseportGroupTest, HashSelectionIsDeterministicAndCovers) {
  ReuseportGroup group(443);
  std::vector<std::unique_ptr<ListeningSocket>> socks;
  for (WorkerId w = 0; w < 4; ++w) {
    socks.push_back(std::make_unique<ListeningSocket>(443, 16, w));
    group.add_socket(socks.back().get());
  }
  sim::Rng rng(2);
  std::set<WorkerId> owners;
  for (int i = 0; i < 1000; ++i) {
    const FourTuple t = tuple_of(static_cast<uint32_t>(rng.next_u64()),
                                 static_cast<uint16_t>(rng.next_u64()), 443);
    ListeningSocket* s1 = group.select(t);
    EXPECT_EQ(group.select(t), s1);  // deterministic per tuple
    owners.insert(s1->owner());
  }
  EXPECT_EQ(owners.size(), 4u);  // all sockets reachable
  EXPECT_EQ(group.stats().hash_selections, 2000u);
}

TEST(ReuseportGroupTest, CookieResolution) {
  ReuseportGroup group(80);
  ListeningSocket s(80, 16, 0);
  group.add_socket(&s);
  EXPECT_EQ(group.by_cookie(s.cookie()), &s);
  EXPECT_EQ(group.by_cookie(0xdeadbeef), nullptr);
}

TEST(ReuseportGroupTest, CookiesAreGloballyUnique) {
  ListeningSocket a(80, 4), b(80, 4), c(81, 4);
  EXPECT_NE(a.cookie(), b.cookie());
  EXPECT_NE(b.cookie(), c.cookie());
}

// --------------------------------------------------------------- NetStack

class NotifyingWaiter : public Waiter {
 public:
  bool idle = true;
  std::vector<PortId> woken_on;
  bool try_wake(ListeningSocket& src) override {
    if (!idle) return false;
    woken_on.push_back(src.port());
    return true;
  }
};

TEST(NetStackTest, ExclusiveModeSharedSocketDispatch) {
  NetStack::Config cfg;
  cfg.mode = DispatchMode::EpollExclusive;
  cfg.num_workers = 3;
  NetStack ns(cfg);
  ns.add_port(80);

  NotifyingWaiter w0, w1, w2;
  // Register in order w0, w1, w2 => w2 at wait-queue heads.
  ns.register_waiter(&w0);
  ns.register_waiter(&w1);
  ns.register_waiter(&w2);

  const Connection c = ns.on_connection_request(tuple_of(1, 1000, 80), 80, 0,
                                                SimTime::zero());
  ASSERT_TRUE(c.valid());
  EXPECT_EQ(w2.woken_on.size(), 1u);  // LIFO favourite
  EXPECT_TRUE(w0.woken_on.empty());

  // The woken worker accepts from the shared socket.
  ListeningSocket* shared = ns.shared_socket(80);
  ASSERT_NE(shared, nullptr);
  const Connection acc = ns.accept(*shared, 2);
  EXPECT_EQ(acc, c);
  EXPECT_EQ(acc.owner(), 2u);
  EXPECT_EQ(acc.state(), ConnState::Accepted);
}

TEST(NetStackTest, ExclusiveAllBusyCountsUnnotified) {
  NetStack::Config cfg;
  cfg.mode = DispatchMode::EpollExclusive;
  cfg.num_workers = 2;
  NetStack ns(cfg);
  ns.add_port(80);
  NotifyingWaiter w0, w1;
  w0.idle = w1.idle = false;
  ns.register_waiter(&w0);
  ns.register_waiter(&w1);
  ASSERT_TRUE(ns.on_connection_request(tuple_of(1, 1, 80), 80, 0,
                                       SimTime::zero())
                  .valid());
  EXPECT_EQ(ns.stats().unnotified, 1u);
  // Connection still queued for the next epoll_wait caller.
  EXPECT_EQ(ns.shared_socket(80)->accept_queue().size(), 1u);
}

TEST(NetStackTest, ReuseportModeNotifiesOwningWorker) {
  NetStack::Config cfg;
  cfg.mode = DispatchMode::Reuseport;
  cfg.num_workers = 4;
  NetStack ns(cfg);
  ns.add_port(443);

  std::map<WorkerId, int> notified;
  ns.set_socket_ready_fn(
      [&](WorkerId w, ListeningSocket& s) {
        EXPECT_EQ(s.owner(), w);
        ++notified[w];
      });

  sim::Rng rng(3);
  for (int i = 0; i < 400; ++i) {
    ns.on_connection_request(
        tuple_of(static_cast<uint32_t>(rng.next_u64()),
                 static_cast<uint16_t>(rng.next_u64()), 443),
        443, 0, SimTime::zero());
  }
  // Hashing spreads notifications over all four workers.
  EXPECT_EQ(notified.size(), 4u);
  int total = 0;
  for (auto& [w, n] : notified) total += n;
  EXPECT_EQ(total, 400);
}

TEST(NetStackTest, BacklogOverflowDropsAndCounts) {
  NetStack::Config cfg;
  cfg.mode = DispatchMode::Reuseport;
  cfg.num_workers = 1;
  cfg.backlog = 2;
  NetStack ns(cfg);
  ns.add_port(80);
  for (int i = 0; i < 5; ++i) {
    ns.on_connection_request(tuple_of(1, static_cast<uint16_t>(i), 80), 80, 0,
                             SimTime::zero());
  }
  EXPECT_EQ(ns.stats().drops, 3u);
  EXPECT_EQ(ns.stats().connections, 2u);
  EXPECT_EQ(ns.live_connections(), 2u);
}

TEST(NetStackTest, CloseReleasesConnection) {
  NetStack::Config cfg;
  cfg.mode = DispatchMode::Reuseport;
  cfg.num_workers = 1;
  NetStack ns(cfg);
  ns.add_port(80);
  const Connection c = ns.on_connection_request(tuple_of(1, 1, 80), 80, 0,
                                                SimTime::zero());
  ASSERT_TRUE(c.valid());
  ListeningSocket* sock = ns.worker_socket(80, 0);
  ASSERT_NE(sock, nullptr);
  EXPECT_EQ(ns.accept(*sock, 0), c);
  ns.close(c);
  EXPECT_EQ(ns.live_connections(), 0u);
  EXPECT_FALSE(c.valid());  // generation bump invalidated the view
}

TEST(NetStackTest, SocketsOfWorkerPerMode) {
  {
    NetStack::Config cfg;
    cfg.mode = DispatchMode::EpollExclusive;
    cfg.num_workers = 2;
    NetStack ns(cfg);
    ns.add_port(80);
    ns.add_port(81);
    // Shared mode: every worker watches every port's shared socket —
    // the O(#ports) epoll registration the paper calls out in Case 1.
    EXPECT_EQ(ns.sockets_of(0).size(), 2u);
    EXPECT_EQ(ns.sockets_of(0), ns.sockets_of(1));
  }
  {
    NetStack::Config cfg;
    cfg.mode = DispatchMode::Reuseport;
    cfg.num_workers = 2;
    NetStack ns(cfg);
    ns.add_port(80);
    ns.add_port(81);
    const auto w0 = ns.sockets_of(0);
    const auto w1 = ns.sockets_of(1);
    ASSERT_EQ(w0.size(), 2u);
    EXPECT_NE(w0[0], w1[0]);  // per-worker sockets
    EXPECT_EQ(w0[0]->owner(), 0u);
    EXPECT_EQ(w1[0]->owner(), 1u);
  }
}

TEST(NetStackTest, HermesModeWithoutProgramFallsBackToHash) {
  NetStack::Config cfg;
  cfg.mode = DispatchMode::HermesMode;
  cfg.num_workers = 2;
  NetStack ns(cfg);
  ns.add_port(80);
  int notified = 0;
  ns.set_socket_ready_fn([&](WorkerId, ListeningSocket&) { ++notified; });
  ASSERT_TRUE(ns.on_connection_request(tuple_of(7, 7, 80), 80, 0,
                                       SimTime::zero())
                  .valid());
  EXPECT_EQ(notified, 1);
  EXPECT_EQ(ns.group(80)->stats().hash_selections, 1u);
}

}  // namespace
}  // namespace hermes::netsim
