// Tests for the observability layer (src/obs): sharded counters, the
// log-linear histogram, and the per-worker trace rings.
//
// Three angles:
//   * deterministic unit checks of the bucket geometry and ring overwrite
//     semantics (exact expectations, no tolerance);
//   * property tests over seeded value streams — every recorded value must
//     land in a bucket that contains it, and snapshot merging must be
//     associative and commutative (merge order cannot change a report);
//   * concurrency: the interleaving explorer shakes the sharded-counter and
//     seqlock-reader protocols step by step, and a real two-std::thread
//     writer/reader test gives TSan something genuinely parallel to watch.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/observability.h"
#include "simcore/rng.h"
#include "testing/interleave.h"

namespace hermes::obs {
namespace {

using hermes::testing::ExploreOptions;
using hermes::testing::ExploreResult;
using hermes::testing::InterleavingExplorer;
using hermes::testing::SchedulePolicy;

// ---- Counter / Gauge ---------------------------------------------------

TEST(CounterTest, ShardsMergeOnRead) {
  Counter c(4);
  c.add(0, 10);
  c.add(1, 1);
  c.inc(3);
  EXPECT_EQ(c.value(), 12u);
  EXPECT_EQ(c.shard_value(0), 10u);
  EXPECT_EQ(c.shard_value(2), 0u);
  EXPECT_EQ(c.shards(), 4u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.set(-5);
  g.add(12);
  EXPECT_EQ(g.value(), 7);
}

// The merged value must equal the sum of per-thread contributions no matter
// how increments from different shards interleave — and any mid-flight read
// must see a value between 0 and the final total (monotonicity).
TEST(CounterTest, ShardedMergeUnderInterleaving) {
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    Counter c(4);
    uint64_t expected = 0;
    std::atomic<uint64_t> last_read{0};

    ExploreOptions opts;
    opts.seed = seed;
    opts.policy = seed % 2 ? SchedulePolicy::RandomWalk
                           : SchedulePolicy::BoundedPreemption;
    InterleavingExplorer ex(opts);
    for (uint32_t t = 0; t < 4; ++t) {
      auto& script = ex.thread("w" + std::to_string(t));
      script.repeat(8, [&c, t](InterleavingExplorer::ThreadScript& s,
                               uint32_t i) {
        s.step("add", [&c, t, i] { c.add(t, i + 1); });
      });
      for (uint32_t i = 0; i < 8; ++i) expected += i + 1;
    }
    ex.invariant("monotone-read", [&c, &last_read, expected] {
      const uint64_t v = c.value();
      const uint64_t prev = last_read.exchange(v);
      if (v < prev) return std::string("merged value went backwards");
      if (v > expected) return std::string("merged value exceeds total");
      return std::string();
    });

    const ExploreResult r = ex.run();
    ASSERT_TRUE(r.ok) << r.report();
    EXPECT_EQ(c.value(), expected) << "seed " << seed;
  }
}

// ---- LogHistogram bucket geometry --------------------------------------

TEST(LogHistogramTest, BucketBoundaries) {
  for (uint32_t sub_bits : {0u, 1u, 2u, 4u}) {
    // Exact boundary values: powers of two and their neighbors.
    std::vector<uint64_t> vals = {0, 1, 2, 3};
    for (int sh = 2; sh < 64; ++sh) {
      const uint64_t p = 1ull << sh;
      vals.push_back(p - 1);
      vals.push_back(p);
      vals.push_back(p + 1);
    }
    vals.push_back(~0ull);

    size_t prev_idx = 0;
    uint64_t prev_v = 0;
    for (uint64_t v : vals) {
      const size_t idx = LogHistogram::bucket_index(v, sub_bits);
      ASSERT_LT(idx, LogHistogram::bucket_count(sub_bits))
          << "v=" << v << " sub_bits=" << sub_bits;
      EXPECT_LE(LogHistogram::bucket_lower(idx, sub_bits), v)
          << "v=" << v << " sub_bits=" << sub_bits;
      EXPECT_GE(LogHistogram::bucket_upper(idx, sub_bits), v)
          << "v=" << v << " sub_bits=" << sub_bits;
      if (v >= prev_v) {
        EXPECT_GE(idx, prev_idx) << "bucket index not monotone at v=" << v;
      }
      prev_idx = idx;
      prev_v = v;
    }
  }
}

TEST(LogHistogramTest, BucketContainsValueProperty) {
  sim::Rng rng(0xb0c4e7);
  for (int i = 0; i < 20000; ++i) {
    // Mix magnitudes: small counts, latencies in ns, and full-range values.
    const uint64_t v = rng.next_u64() >> (rng.next_u64() % 64);
    for (uint32_t sub_bits : {1u, 2u, 3u}) {
      const size_t idx = LogHistogram::bucket_index(v, sub_bits);
      ASSERT_LE(LogHistogram::bucket_lower(idx, sub_bits), v);
      ASSERT_GE(LogHistogram::bucket_upper(idx, sub_bits), v);
      // The bucket's relative width bounds the quantile error: upper/lower
      // <= 1 + 2^-sub_bits for lower >= 2^sub_bits.
      const uint64_t lo = LogHistogram::bucket_lower(idx, sub_bits);
      const uint64_t hi = LogHistogram::bucket_upper(idx, sub_bits);
      if (lo >= (1ull << sub_bits)) {
        ASSERT_LE(static_cast<double>(hi - lo) / static_cast<double>(lo),
                  1.0 / static_cast<double>(1ull << sub_bits) + 1e-9)
            << "bucket " << idx << " too wide at sub_bits=" << sub_bits;
      }
    }
  }
}

TEST(LogHistogramTest, RecordAndQuantiles) {
  LogHistogram h(2, /*sub_bits=*/4);
  for (uint64_t v = 1; v <= 1000; ++v) h.record(v % 2, v);
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_EQ(s.sum, 1000u * 1001u / 2);
  // p50 within one bucket width (1/16 relative) of 500.
  EXPECT_NEAR(static_cast<double>(s.p50()), 500.0, 500.0 / 16 + 1);
  EXPECT_NEAR(static_cast<double>(s.p99()), 990.0, 990.0 / 16 + 1);
  // Per-shard views partition the merged one.
  const auto s0 = h.shard_snapshot(0);
  const auto s1 = h.shard_snapshot(1);
  EXPECT_EQ(s0.count + s1.count, s.count);
  EXPECT_EQ(s0.sum + s1.sum, s.sum);
}

// Merging snapshots is associative and commutative: any merge tree over the
// same shard set yields bit-identical buckets, count, and sum.
TEST(LogHistogramTest, SnapshotMergeAssociativityProperty) {
  sim::Rng rng(0x5eed);
  LogHistogram h(4, /*sub_bits=*/2);
  for (int i = 0; i < 5000; ++i) {
    h.record(static_cast<uint32_t>(rng.next_below(4)),
             rng.next_u64() >> (rng.next_u64() % 48));
  }
  std::vector<LogHistogram::Snapshot> shards;
  for (uint32_t s = 0; s < 4; ++s) shards.push_back(h.shard_snapshot(s));

  // ((0+1)+2)+3
  auto left = shards[0];
  for (int s = 1; s < 4; ++s) left.merge(shards[s]);
  // (3+(2+(1+0)))
  auto right = shards[3];
  {
    auto inner = shards[2];
    auto inner2 = shards[1];
    inner2.merge(shards[0]);
    inner.merge(inner2);
    right.merge(inner);
  }
  // (0+2)+(1+3)
  auto pairs = shards[0];
  pairs.merge(shards[2]);
  auto pairs2 = shards[1];
  pairs2.merge(shards[3]);
  pairs.merge(pairs2);

  const auto merged = h.snapshot();
  for (const auto* v : {&left, &right, &pairs}) {
    EXPECT_EQ(v->count, merged.count);
    EXPECT_EQ(v->sum, merged.sum);
    EXPECT_EQ(v->buckets, merged.buckets);
  }
  EXPECT_EQ(left.p99(), merged.p99());
}

// ---- TraceRing ---------------------------------------------------------

TraceEvent make_event(uint64_t i) {
  // Every field derives from i so a torn or misplaced record is detectable.
  TraceEvent ev;
  ev.t_ns = static_cast<int64_t>(i);
  ev.type = static_cast<uint16_t>(1 + i % 6);
  ev.worker = static_cast<uint16_t>(i % 7);
  ev.a = static_cast<uint32_t>(i * 2654435761u);
  ev.b = i * 0x9e3779b97f4a7c15ull;
  ev.c = ~i;
  return ev;
}

void expect_event_is(const TraceEvent& ev, uint64_t i) {
  const TraceEvent want = make_event(i);
  EXPECT_EQ(ev.t_ns, want.t_ns);
  EXPECT_EQ(ev.type, want.type);
  EXPECT_EQ(ev.worker, want.worker);
  EXPECT_EQ(ev.a, want.a);
  EXPECT_EQ(ev.b, want.b);
  EXPECT_EQ(ev.c, want.c);
}

TEST(TraceRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(TraceRing(1000).capacity(), 1024u);
  EXPECT_EQ(TraceRing(4096).capacity(), 4096u);
  EXPECT_EQ(TraceRing(1).capacity(), 1u);
}

TEST(TraceRingTest, OverwritesOldestKeepsNewest) {
  TraceRing ring(64);
  const uint64_t total = 64 * 2 + 17;
  for (uint64_t i = 0; i < total; ++i) ring.write(make_event(i));
  const auto snap = ring.snapshot();
  // Conservative by one slot once wrapped: capacity-1 newest records.
  ASSERT_EQ(snap.size(), ring.capacity() - 1);
  for (size_t k = 0; k < snap.size(); ++k) {
    expect_event_is(snap[k], total - snap.size() + k);
  }
  expect_event_is(snap.back(), total - 1);
}

TEST(TraceRingTest, PartialFillSnapshotsInOrder) {
  TraceRing ring(64);
  for (uint64_t i = 0; i < 10; ++i) ring.write(make_event(i));
  const auto snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 10u);
  for (size_t k = 0; k < 10; ++k) expect_event_is(snap[k], k);
}

// Step-level interleaving of one writer and one snapshotting reader: every
// snapshot must be a contiguous, in-order window of the written sequence
// ending at the current head.
TEST(TraceRingTest, ReaderConsistencyUnderInterleaving) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    TraceRing ring(8);
    uint64_t written = 0;
    std::string err;

    ExploreOptions opts;
    opts.seed = seed;
    opts.policy = seed % 2 ? SchedulePolicy::BoundedPreemption
                           : SchedulePolicy::RandomWalk;
    InterleavingExplorer ex(opts);

    ex.thread("writer").repeat(
        24, [&](InterleavingExplorer::ThreadScript& s, uint32_t) {
          s.step("write", [&] { ring.write(make_event(written++)); });
        });
    ex.thread("reader").repeat(
        8, [&](InterleavingExplorer::ThreadScript& s, uint32_t) {
          s.step("snapshot", [&] {
            const auto snap = ring.snapshot();
            if (snap.size() > std::min<uint64_t>(written, ring.capacity())) {
              err = "snapshot larger than written window";
              return;
            }
            // Must be the most recent snap.size() events, in order.
            const uint64_t first = written - snap.size();
            for (size_t k = 0; k < snap.size(); ++k) {
              const TraceEvent want = make_event(first + k);
              if (snap[k].t_ns != want.t_ns || snap[k].b != want.b ||
                  snap[k].c != want.c) {
                err = "snapshot out of order or torn at k=" +
                      std::to_string(k);
                return;
              }
            }
          });
        });
    ex.invariant("reader-consistency", [&err] { return err; });

    const ExploreResult r = ex.run();
    ASSERT_TRUE(r.ok) << r.report();
  }
}

// Real parallel writer/reader: TSan-visible. The reader may observe any
// suffix window, but never a torn record (all fields must agree on i) and
// never out-of-order records.
TEST(TraceRingTest, ConcurrentReaderNeverSeesTornRecords) {
  TraceRing ring(256);
  constexpr uint64_t kWrites = 2'000'000;
  std::atomic<bool> done{false};

  std::thread writer([&] {
    for (uint64_t i = 0; i < kWrites; ++i) ring.write(make_event(i));
    done.store(true, std::memory_order_release);
  });

  uint64_t snapshots = 0;
  // Keep snapshotting until the writer finishes (plus a floor, in case the
  // writer wins the start race entirely).
  while (!done.load(std::memory_order_acquire) || snapshots < 8) {
    const auto snap = ring.snapshot();
    ++snapshots;
    int64_t prev = -1;
    for (const auto& ev : snap) {
      const uint64_t i = static_cast<uint64_t>(ev.t_ns);
      const TraceEvent want = make_event(i);
      ASSERT_EQ(ev.b, want.b) << "torn record at i=" << i;
      ASSERT_EQ(ev.c, want.c) << "torn record at i=" << i;
      ASSERT_EQ(ev.a, want.a) << "torn record at i=" << i;
      ASSERT_GT(ev.t_ns, prev) << "out-of-order snapshot";
      prev = ev.t_ns;
    }
  }
  writer.join();
  EXPECT_GT(snapshots, 0u);
  const auto final_snap = ring.snapshot();
  ASSERT_EQ(final_snap.size(), ring.capacity() - 1);
  expect_event_is(final_snap.back(), kWrites - 1);
}

TEST(TraceBufferTest, RoutesByWorkerAndMergesSorted) {
  TraceBuffer buf(3, 16);
  buf.write(2, TraceType::Dispatch, SimTime::nanos(30), 1, 2, 3);
  buf.write(0, TraceType::Accept, SimTime::nanos(10), 4, 5, 6);
  buf.write(1, TraceType::Drop, SimTime::nanos(20), 7, 8, 9);
  // Out-of-range worker routes to ring 0 (kernel-side events).
  buf.write(99, TraceType::BitmapSync, SimTime::nanos(40), 0, 0, 0);
  EXPECT_EQ(buf.ring(0).written(), 2u);

  const auto merged = buf.merged_snapshot();
  ASSERT_EQ(merged.size(), 4u);
  for (size_t k = 1; k < merged.size(); ++k) {
    EXPECT_LE(merged[k - 1].t_ns, merged[k].t_ns);
  }
  EXPECT_EQ(merged[0].t_ns, 10);
  EXPECT_EQ(merged[3].t_ns, 40);
}

// ---- Registry / exporters ----------------------------------------------

TEST(RegistryTest, CreationIsIdempotentPerName) {
  Registry reg(4);
  Counter& a = reg.counter("x.count");
  Counter& b = reg.counter("x.count");
  EXPECT_EQ(&a, &b);
  Gauge& g1 = reg.gauge("x.depth");
  Gauge& g2 = reg.gauge("x.depth");
  EXPECT_EQ(&g1, &g2);
  LogHistogram& h1 = reg.histogram("x.lat");
  LogHistogram& h2 = reg.histogram("x.lat");
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h1.shards(), 4u);  // default_shards
}

TEST(RegistryTest, ExportsContainRecordedMetrics) {
  Registry reg(2);
  reg.counter("dispatch.picks").add(0, 41);
  reg.counter("dispatch.picks").add(1, 1);
  reg.gauge("sync.staleness").set(-3);
  reg.histogram("req.latency").record(0, 1000);

  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"dispatch.picks\":42"), std::string::npos) << json;
  EXPECT_NE(json.find("\"sync.staleness\":-3"), std::string::npos) << json;
  EXPECT_NE(json.find("req.latency"), std::string::npos) << json;

  const std::string text = reg.text_dump();
  EXPECT_NE(text.find("dispatch.picks"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
}

TEST(ObservabilityTest, PipelineMetricsAllWired) {
  Observability obs(4, 64);
  const PipelineMetrics& m = obs.metrics;
  for (Counter* c :
       {m.wst_avail_updates, m.wst_pending_updates, m.wst_conn_updates,
        m.filter_runs, m.filter_after_time, m.filter_after_conn,
        m.filter_after_event, m.filter_low_survivor, m.sync_published,
        m.sync_dropped, m.dispatch_picks, m.dispatch_bpf,
        m.dispatch_fallback, m.dispatch_hash, m.accept_enqueued,
        m.accept_dropped}) {
    ASSERT_NE(c, nullptr);
  }
  ASSERT_NE(m.filter_selected, nullptr);
  ASSERT_NE(m.sync_gap_ns, nullptr);
  ASSERT_NE(m.accept_depth, nullptr);
  EXPECT_EQ(m.dispatch_picks->shards(), 4u);
  EXPECT_EQ(obs.traces.workers(), 4u);
  EXPECT_EQ(obs.traces.ring(0).capacity(), 64u);
}

TEST(TraceExportTest, ChromeTraceAndTextFormats) {
  TraceBuffer buf(2, 16);
  buf.write(0, TraceType::Dispatch, SimTime::micros(5), 1, 0xff, 8080);
  buf.write(1, TraceType::RequestDone, SimTime::micros(7), 3, 17, 123456);
  const auto events = buf.merged_snapshot();

  const std::string chrome = to_chrome_trace(events);
  EXPECT_EQ(chrome.rfind("{\"traceEvents\":[", 0), 0u) << chrome;
  EXPECT_NE(chrome.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(chrome.find("dispatch"), std::string::npos);
  // ts is microseconds in the trace-event format.
  EXPECT_NE(chrome.find("\"ts\":5"), std::string::npos) << chrome;

  const std::string text = to_text(events);
  EXPECT_NE(text.find("dispatch"), std::string::npos);
  EXPECT_NE(text.find("request_done"), std::string::npos);
}

}  // namespace
}  // namespace hermes::obs
