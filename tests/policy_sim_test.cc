// End-to-end scheduling-policy runs through the full LB device: every
// policy's generated program attaches (prove-before-load), dispatches
// real traffic, and shows up in the sched.policy.* observability
// counters; the weighted policy skews connections toward faster cores in
// a heterogeneous fleet; per-worker speed scales the cost model.
//
// Every test pins Config::policy explicitly, so the suite passes under
// any HERMES_POLICY value — the check.sh policy sweep re-runs it with
// each one to cover the env-selection path end to end.
#include <gtest/gtest.h>

#include <string>

#include "sim/lb.h"
#include "sim/workload.h"

namespace hermes::sim {
namespace {

LbDevice::Config policy_config(core::PolicyKind kind, uint32_t workers = 8) {
  LbDevice::Config cfg;
  cfg.mode = netsim::DispatchMode::HermesMode;
  cfg.num_workers = workers;
  cfg.num_ports = 8;
  cfg.policy = kind;
  return cfg;
}

void run_case(LbDevice& lb, double load = 1.0, double seconds = 1.0) {
  const SimTime end = SimTime::from_seconds_f(seconds);
  lb.start_pattern(case_pattern(3, lb.num_workers(), load), 0,
                   lb.config().num_ports, end);
  lb.eq().run_until(end);
}

TEST(PolicySimTest, EveryPolicyServesTrafficEndToEnd) {
  for (size_t k = 0; k < core::kPolicyCount; ++k) {
    const auto kind = static_cast<core::PolicyKind>(k);
    LbDevice lb(policy_config(kind));
    ASSERT_NE(lb.hermes(), nullptr);
    EXPECT_EQ(lb.hermes()->policy_kind(), kind);
    run_case(lb);

    const char* name = core::to_string(kind);
    EXPECT_GT(lb.totals().requests_completed, 100u) << name;
    ASSERT_NE(lb.obs(), nullptr);
    const auto& m = lb.obs()->metrics;
    // The active policy's program made selections and its userspace half
    // published; the other three policies' counters stayed at zero.
    EXPECT_GT(m.policy_dispatches[k]->value(), 0u) << name;
    EXPECT_GT(m.policy_publishes[k]->value(), 0u) << name;
    for (size_t other = 0; other < core::kPolicyCount; ++other) {
      if (other == k) continue;
      EXPECT_EQ(m.policy_dispatches[other]->value(), 0u)
          << name << " leaked into "
          << core::to_string(static_cast<core::PolicyKind>(other));
      EXPECT_EQ(m.policy_publishes[other]->value(), 0u) << name;
    }
  }
}

TEST(PolicySimTest, PolicyCountersAppearInRegistryDump) {
  LbDevice lb(policy_config(core::PolicyKind::P2c));
  run_case(lb, 1.0, 0.5);
  const std::string dump = lb.obs()->registry.text_dump();
  EXPECT_NE(dump.find("sched.policy.p2c.dispatches"), std::string::npos);
  EXPECT_NE(dump.find("sched.policy.p2c.publishes"), std::string::npos);
  EXPECT_NE(dump.find("sched.policy.cascade.dispatches"), std::string::npos);
}

TEST(PolicySimTest, LoadAwarePoliciesOnlyDispatchInsideEligibleSet) {
  // The dispatch conservation law per policy: every established
  // connection was placed either by the policy program or by the hash
  // fallback — no third path, no double counting.
  for (size_t k = 0; k < core::kPolicyCount; ++k) {
    const auto kind = static_cast<core::PolicyKind>(k);
    LbDevice lb(policy_config(kind));
    run_case(lb);
    const auto& m = lb.obs()->metrics;
    EXPECT_EQ(m.policy_dispatches[k]->value(), m.dispatch_bpf->value())
        << core::to_string(kind);
    EXPECT_EQ(m.dispatch_bpf->value() + m.dispatch_fallback->value() +
                  m.dispatch_hash->value(),
              m.dispatch_picks->value())
        << core::to_string(kind);
  }
}

TEST(PolicySimTest, WeightedPolicySkewsTowardFastCores) {
  // Heterogeneous fleet: workers 0-1 run at 2x. The weighted program's
  // lottery (weights ∝ speed) must route more connections to the fast
  // cores than the slow ones.
  LbDevice::Config cfg = policy_config(core::PolicyKind::Weighted, 4);
  cfg.worker_speeds = {2.0, 2.0, 1.0, 1.0};
  LbDevice lb(cfg);
  run_case(lb, 2.0, 2.0);

  uint64_t fast = 0, slow = 0;
  for (WorkerId w = 0; w < 4; ++w) {
    (w < 2 ? fast : slow) += lb.worker(w).requests_done();
  }
  EXPECT_GT(lb.totals().requests_completed, 500u);
  EXPECT_GT(fast, slow);
}

TEST(PolicySimTest, WorkerSpeedScalesServiceCost) {
  // Same seed, same traffic; quadrupling every core's speed must cut the
  // fleet's total busy time (the per-event cost divides by the factor).
  auto busy_total = [](LbDevice& lb) {
    SimTime total{};
    for (WorkerId w = 0; w < lb.num_workers(); ++w) {
      total = total + lb.worker(w).busy_time();
    }
    return total;
  };
  LbDevice::Config slow_cfg = policy_config(core::PolicyKind::Cascade, 4);
  LbDevice slow_lb(slow_cfg);
  run_case(slow_lb);

  LbDevice::Config fast_cfg = policy_config(core::PolicyKind::Cascade, 4);
  fast_cfg.worker_speeds = {4.0, 4.0, 4.0, 4.0};
  LbDevice fast_lb(fast_cfg);
  run_case(fast_lb);

  EXPECT_GE(fast_lb.totals().requests_completed,
            slow_lb.totals().requests_completed);
  EXPECT_LT(busy_total(fast_lb).ns(), busy_total(slow_lb).ns() / 2);
}

TEST(PolicySimTest, DefaultPolicyFromEnvironmentServesTraffic) {
  // The one test that does NOT pin Config::policy: whatever HERMES_POLICY
  // selected (the check.sh sweep sets each name in turn) must attach,
  // prove, and dispatch.
  LbDevice::Config cfg;
  cfg.mode = netsim::DispatchMode::HermesMode;
  cfg.num_workers = 8;
  cfg.num_ports = 8;
  LbDevice lb(cfg);
  ASSERT_NE(lb.hermes(), nullptr);
  EXPECT_EQ(lb.hermes()->policy_kind(), core::default_policy());
  run_case(lb);
  EXPECT_GT(lb.totals().requests_completed, 100u);
  const auto active = static_cast<size_t>(lb.hermes()->policy_kind());
  EXPECT_GT(lb.obs()->metrics.policy_dispatches[active]->value(), 0u);
}

TEST(PolicySimTest, AuxPublishesTrackSchedules) {
  // Policies with an aux map refresh it on every schedule (the staleness
  // bound queue_est's estimates rely on); the cascade has no aux state.
  LbDevice lb(policy_config(core::PolicyKind::QueueEst));
  run_case(lb, 1.0, 0.5);
  const auto& c = lb.hermes()->counters();
  EXPECT_GT(c.aux_publishes, 0u);
  EXPECT_GE(c.schedules, c.aux_publishes);

  LbDevice cascade_lb(policy_config(core::PolicyKind::Cascade));
  run_case(cascade_lb, 1.0, 0.5);
  EXPECT_EQ(cascade_lb.hermes()->counters().aux_publishes, 0u);
}

}  // namespace
}  // namespace hermes::sim
