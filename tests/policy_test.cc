// Unit semantics of the pluggable scheduling policies (core/policy.h):
// name round-trips, the cascade's byte-identity guarantee, and each
// load-aware policy's userspace half (fill_aux) + C++ decision mirror
// (reference_dispatch) — the torture sweep separately proves the mirrors
// agree with the generated programs on every tier.
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "bpf/insn.h"
#include "core/policy.h"

namespace hermes::core {
namespace {

PolicyProgramParams params(uint32_t groups, uint32_t wpg,
                           uint32_t min_workers = 1) {
  PolicyProgramParams p;
  p.base.num_groups = groups;
  p.base.workers_per_group = wpg;
  p.base.min_workers = min_workers;
  return p;
}

PolicyAuxInputs aux_inputs(const int64_t* conns, const int64_t* pending,
                           uint32_t limit, const ScheduleResult* sr) {
  PolicyAuxInputs in;
  in.loop_enter_ns = conns;
  in.pending_events = pending;
  in.connections = conns;
  in.limit = limit;
  in.base = 0;
  in.result = sr;
  return in;
}

TEST(PolicyTest, NameRoundTripsForEveryKind) {
  for (size_t k = 0; k < kPolicyCount; ++k) {
    const auto kind = static_cast<PolicyKind>(k);
    PolicyKind parsed;
    ASSERT_TRUE(parse_policy(to_string(kind), &parsed)) << to_string(kind);
    EXPECT_EQ(parsed, kind);
  }
}

TEST(PolicyTest, ParseRejectsUnknownNames) {
  PolicyKind k;
  EXPECT_FALSE(parse_policy("", &k));
  EXPECT_FALSE(parse_policy("p3c", &k));
  EXPECT_FALSE(parse_policy("Cascade", &k));
  EXPECT_FALSE(parse_policy("queue-est", &k));
}

TEST(PolicyTest, MakePolicyReportsItsKind) {
  for (size_t k = 0; k < kPolicyCount; ++k) {
    const auto kind = static_cast<PolicyKind>(k);
    const auto policy = make_policy(kind);
    EXPECT_EQ(policy->kind(), kind);
    EXPECT_STREQ(policy->name(), to_string(kind));
  }
}

TEST(PolicyTest, CascadeProgramByteIdenticalToLegacyBuilder) {
  // The framework refactor must not change a single emitted instruction
  // of the paper's program: existing proofs, benches, and attached-fleet
  // behaviour all key off it.
  for (uint32_t groups : {1u, 2u, 16u}) {
    const auto p = params(groups, 16, 2);
    const bpf::Program via_policy =
        make_policy(PolicyKind::Cascade)->build_program(p);
    const bpf::Program legacy = build_dispatch_program(p.base);
    ASSERT_EQ(via_policy.size(), legacy.size()) << groups << " groups";
    for (size_t i = 0; i < legacy.size(); ++i) {
      EXPECT_EQ(bpf::disassemble(via_policy[i]), bpf::disassemble(legacy[i]))
          << "insn " << i << " (" << groups << " groups)";
    }
  }
}

TEST(PolicyTest, CascadeNeedsNoAuxMap) {
  EXPECT_EQ(make_policy(PolicyKind::Cascade)->aux_value_bytes(), 0u);
}

TEST(PolicyTest, P2cAuxSentinelsPastLiveSlice) {
  const auto policy = make_policy(PolicyKind::P2c);
  int64_t conns[kMaxWorkersPerGroup] = {3, 1, -7, 2};
  int64_t pending[kMaxWorkersPerGroup] = {};
  uint64_t words[kMaxWorkersPerGroup];
  policy->fill_aux(aux_inputs(conns, pending, /*limit=*/4, nullptr), words);
  EXPECT_EQ(words[0], 3u);
  EXPECT_EQ(words[1], 1u);
  EXPECT_EQ(words[2], 0u);  // negative WST word clamps to zero
  EXPECT_EQ(words[3], 2u);
  for (uint32_t i = 4; i < kMaxWorkersPerGroup; ++i) {
    EXPECT_EQ(words[i], UINT64_MAX) << i;  // can never win a comparison
  }
}

TEST(PolicyTest, P2cPrefersLessLoadedWorker) {
  const auto policy = make_policy(PolicyKind::P2c);
  const auto p = params(1, 8);
  const uint64_t bitmap = 0x3;  // workers 0 and 1 eligible
  uint64_t loads[kMaxWorkersPerGroup] = {};
  loads[0] = 100;
  loads[1] = 0;
  int picked1 = 0, picked0 = 0;
  for (uint32_t h = 0; h < 512; ++h) {
    const uint32_t hash = h * 0x61c88647u + 13;
    const WorkerId got = policy->reference_dispatch(
        p, &bitmap, reinterpret_cast<uint8_t*>(loads), sizeof(loads), hash,
        hash ^ 0xa5a5);
    ASSERT_TRUE(got == 0 || got == 1) << got;
    (got == 1 ? picked1 : picked0) += 1;
  }
  // Worker 1 wins every trial where either sample hit it; worker 0 only
  // wins double-collisions. With two workers that is a strict majority.
  EXPECT_GT(picked1, picked0);
  EXPECT_GT(picked0, 0);  // double-collisions do occur
}

TEST(PolicyTest, WeightedLotteryAllotsSlotsProportionally) {
  const auto policy =
      make_policy(PolicyKind::Weighted, PolicyConfig{{3, 1}});
  ScheduleResult sr;
  sr.bitmap = 0x3;
  int64_t zeros[kMaxWorkersPerGroup] = {};
  uint64_t words[kMaxWorkersPerGroup / 8];
  policy->fill_aux(aux_inputs(zeros, zeros, /*limit=*/2, &sr), words);
  const auto* table = reinterpret_cast<const uint8_t*>(words);
  int count0 = 0, count1 = 0;
  for (uint32_t s = 0; s < kMaxWorkersPerGroup; ++s) {
    ASSERT_TRUE(table[s] == 0 || table[s] == 1) << "slot " << s;
    (table[s] == 0 ? count0 : count1) += 1;
  }
  // weight 3:1 over 64 slots -> exactly 48:16 with the deterministic
  // cumulative allotment.
  EXPECT_EQ(count0, 48);
  EXPECT_EQ(count1, 16);
}

TEST(PolicyTest, WeightedPoisonsTableWhenNothingEligible) {
  const auto policy = make_policy(PolicyKind::Weighted);
  ScheduleResult sr;
  sr.bitmap = 0;
  int64_t zeros[kMaxWorkersPerGroup] = {};
  uint64_t words[kMaxWorkersPerGroup / 8];
  policy->fill_aux(aux_inputs(zeros, zeros, /*limit=*/8, &sr), words);
  const auto* table = reinterpret_cast<const uint8_t*>(words);
  for (uint32_t s = 0; s < kMaxWorkersPerGroup; ++s) {
    EXPECT_EQ(table[s], 0xFF) << "slot " << s;
  }
  // And the mirror turns the poison into a fallback, never a dispatch.
  const auto p = params(1, 8);
  const uint64_t bitmap = 0;
  uint8_t aux[kMaxWorkersPerGroup];
  std::memset(aux, 0xFF, sizeof(aux));
  EXPECT_EQ(policy->reference_dispatch(p, &bitmap, aux, sizeof(aux), 1, 2),
            kInvalidWorker);
}

TEST(PolicyTest, WeightedStaleTableFallsBackOnMembershipCheck) {
  // Table built while worker 0 was eligible; bitmap has since dropped it.
  // A slot pointing at worker 0 must fall back, not dispatch outside the
  // eligible set.
  const auto policy = make_policy(PolicyKind::Weighted);
  const auto p = params(1, 8);
  uint8_t table[kMaxWorkersPerGroup];
  std::memset(table, 0, sizeof(table));  // every slot -> worker 0
  const uint64_t bitmap = 0x2;           // only worker 1 eligible now
  EXPECT_EQ(policy->reference_dispatch(p, &bitmap, table, sizeof(table),
                                       0xdeadbeef, 7),
            kInvalidWorker);
}

TEST(PolicyTest, QueueEstArgminFollowsIncrements) {
  const auto policy = make_policy(PolicyKind::QueueEst);
  const auto p = params(1, 8);
  const uint64_t bitmap = 0x7;  // workers 0..2
  uint64_t est[kMaxWorkersPerGroup] = {};
  est[0] = 5;
  est[1] = 1;
  est[2] = 3;
  auto* aux = reinterpret_cast<uint8_t*>(est);
  // Argmin with the in-decision increment: 1 stays cheapest until its
  // estimate crosses worker 2's, then the pick moves over — consecutive
  // dispatches between refreshes spread instead of herding.
  EXPECT_EQ(policy->reference_dispatch(p, &bitmap, aux, 512, 0, 0), 1u);
  EXPECT_EQ(est[1], 2u);
  EXPECT_EQ(policy->reference_dispatch(p, &bitmap, aux, 512, 0, 0), 1u);
  EXPECT_EQ(policy->reference_dispatch(p, &bitmap, aux, 512, 0, 0), 1u);
  EXPECT_EQ(est[1], 4u);
  EXPECT_EQ(policy->reference_dispatch(p, &bitmap, aux, 512, 0, 0), 2u);
  EXPECT_EQ(est[2], 4u);
}

TEST(PolicyTest, QueueEstIgnoresIneligibleMinimum) {
  const auto policy = make_policy(PolicyKind::QueueEst);
  const auto p = params(1, 8);
  const uint64_t bitmap = 0x4;  // only worker 2
  uint64_t est[kMaxWorkersPerGroup] = {};
  est[0] = 0;  // global minimum, but not eligible
  est[2] = 99;
  EXPECT_EQ(policy->reference_dispatch(
                p, &bitmap, reinterpret_cast<uint8_t*>(est), 512, 0, 0),
            2u);
}

TEST(PolicyTest, MinWorkersGateAppliesToEveryPolicy) {
  uint8_t aux[kMaxWorkersPerGroup * 8] = {};
  const uint64_t bitmap = 0x1;  // one survivor, min_workers = 2
  for (size_t k = 0; k < kPolicyCount; ++k) {
    const auto policy = make_policy(static_cast<PolicyKind>(k));
    const auto p = params(1, 8, /*min_workers=*/2);
    EXPECT_EQ(policy->reference_dispatch(p, &bitmap, aux, sizeof(aux), 5, 9),
              kInvalidWorker)
        << policy->name();
  }
}

}  // namespace
}  // namespace hermes::core
