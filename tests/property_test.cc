// Property-based tests: randomized invariants over the scheduler, the
// dispatch pipeline, the verifier (robustness fuzz), and the HTTP parser.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "bpf/vm.h"
#include "core/dispatch_prog.h"
#include "core/hermes.h"
#include "core/scheduler.h"
#include "http/parser.h"
#include "simcore/rng.h"
#include "test_util.h"

namespace hermes {
namespace {

// ---------------------------------------------------------- scheduler

class SchedulerPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SchedulerPropertyTest, InvariantsHoldOnRandomTables) {
  sim::Rng rng(GetParam());
  const uint32_t workers = 1 + static_cast<uint32_t>(rng.next_below(32));
  auto buf = testing::wst_buffer(workers);
  auto wst = core::WorkerStatusTable::init(buf.data(), workers);

  core::HermesConfig cfg;
  cfg.theta_ratio = rng.uniform(0.0, 2.0);
  const SimTime now = SimTime::seconds(10);

  std::vector<bool> hung(workers);
  for (WorkerId w = 0; w < workers; ++w) {
    hung[w] = rng.bernoulli(0.2);
    wst.update_avail(w, hung[w] ? SimTime::zero()
                                : now - SimTime::millis(
                                            (int64_t)rng.next_below(40)));
    wst.add_connections(w, (int64_t)rng.next_below(1000));
    wst.add_pending(w, (int64_t)rng.next_below(50));
  }

  core::Scheduler sched(cfg);
  const auto res = sched.schedule(wst, now);

  // 1. No hung worker is ever selected.
  for (WorkerId w = 0; w < workers; ++w) {
    if (hung[w]) EXPECT_FALSE(core::bitmap_test(res.bitmap, w));
  }
  // 2. Bitmap never names workers beyond the table.
  for (WorkerId w = workers; w < 64; ++w) {
    EXPECT_FALSE(core::bitmap_test(res.bitmap, w));
  }
  // 3. selected == popcount(bitmap), and the cascade only shrinks.
  EXPECT_EQ(res.selected, core::count_nonzero_bits(res.bitmap));
  EXPECT_LE(res.after_conn, res.after_time);
  EXPECT_LE(res.after_event, res.after_conn);
  EXPECT_EQ(res.selected, res.after_event);
  // 4. If any worker is alive, the time filter keeps it.
  uint32_t alive = 0;
  for (bool h : hung) alive += h ? 0 : 1;
  EXPECT_EQ(res.after_time, alive);
}

TEST_P(SchedulerPropertyTest, WiderThetaNeverSelectsFewer) {
  sim::Rng rng(GetParam() + 1000);
  const uint32_t workers = 2 + static_cast<uint32_t>(rng.next_below(30));
  auto buf = testing::wst_buffer(workers);
  auto wst = core::WorkerStatusTable::init(buf.data(), workers);
  const SimTime now = SimTime::seconds(1);
  for (WorkerId w = 0; w < workers; ++w) {
    wst.update_avail(w, now);
    wst.add_connections(w, (int64_t)rng.next_below(500));
    wst.add_pending(w, (int64_t)rng.next_below(50));
  }
  core::HermesConfig narrow_cfg, wide_cfg;
  narrow_cfg.theta_ratio = 0.2;
  wide_cfg.theta_ratio = 1.5;
  const auto narrow = core::Scheduler(narrow_cfg).schedule(wst, now);
  const auto wide = core::Scheduler(wide_cfg).schedule(wst, now);
  EXPECT_LE(narrow.selected, wide.selected);
  // Narrow selection is a subset of the wide one.
  EXPECT_EQ(narrow.bitmap & wide.bitmap, narrow.bitmap);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerPropertyTest,
                         ::testing::Range<uint64_t>(0, 25));

// ------------------------------------------------- dispatch pipeline

class DispatchPropertyTest : public ::testing::TestWithParam<uint64_t> {};

// End-to-end: random WST -> schedule -> sync -> bpf dispatch. The selected
// worker must always be a member of the scheduler's bitmap.
TEST_P(DispatchPropertyTest, DispatchedWorkerIsAlwaysSelected) {
  sim::Rng rng(GetParam());
  const uint32_t workers = 2 + static_cast<uint32_t>(rng.next_below(62));
  core::HermesRuntime::Options opts;
  opts.num_workers = workers;
  core::HermesRuntime rt(opts);

  const SimTime now = SimTime::seconds(5);
  for (WorkerId w = 0; w < workers; ++w) {
    if (!rng.bernoulli(0.15)) rt.hooks_for(w).on_loop_enter(now);
    rt.wst().add_connections(w, (int64_t)rng.next_below(300));
    rt.wst().add_pending(w, (int64_t)rng.next_below(20));
  }
  std::vector<uint64_t> cookies;
  for (WorkerId w = 0; w < workers; ++w) cookies.push_back(100 + w);
  auto att = rt.attach_port(cookies);

  const auto res = rt.schedule_and_sync(0, now);
  for (int i = 0; i < 64; ++i) {
    bpf::ReuseportCtx ctx;
    ctx.hash = static_cast<uint32_t>(rng.next_u64());
    const auto run = rt.vm().run(*att.program, ctx);
    if (run.ret == bpf::kRetUseSelection && ctx.selection_made) {
      const auto w = static_cast<WorkerId>(ctx.selected_socket - 100);
      EXPECT_TRUE(core::bitmap_test(res.bitmap, w))
          << "dispatched to unselected worker " << w;
    } else {
      // Fallback only when the coarse filter passed < 2 workers.
      EXPECT_LT(res.selected, 2u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DispatchPropertyTest,
                         ::testing::Range<uint64_t>(100, 120));

// ------------------------------------------------- verifier robustness

// Fuzz: random instruction streams must never crash the verifier, and any
// program it ACCEPTS must execute in the VM without tripping the runtime
// memory guards (defense in depth: the guards abort the process, so mere
// successful execution is the assertion).
TEST(VerifierFuzzTest, RandomProgramsNeverBreakTheSandbox) {
  sim::Rng rng(0xfadedace);
  bpf::Vm vm;
  bpf::ArrayMap sel(2, 8);
  bpf::ReuseportSockArray socks(8);
  socks.update(1, 42);
  std::vector<bpf::Map*> maps = {&sel, &socks};

  int accepted = 0;
  constexpr int kPrograms = 3000;
  for (int i = 0; i < kPrograms; ++i) {
    const size_t len = 1 + rng.next_below(24);
    bpf::Program prog;
    for (size_t k = 0; k < len; ++k) {
      bpf::Insn insn;
      insn.op = static_cast<bpf::Op>(
          rng.next_below(static_cast<uint64_t>(bpf::Op::Exit) + 1));
      insn.dst = static_cast<uint8_t>(rng.next_below(12));  // incl. invalid
      insn.src = static_cast<uint8_t>(rng.next_below(12));
      insn.off = static_cast<int32_t>(rng.next_below(40)) - 8;
      switch (rng.next_below(4)) {
        case 0: insn.imm = 0; break;
        case 1: insn.imm = static_cast<int64_t>(rng.next_below(5)); break;
        case 2: insn.imm = -4; break;
        default:
          insn.imm = static_cast<int64_t>(rng.next_u64());
          break;
      }
      prog.push_back(insn);
    }
    prog.push_back({bpf::Op::MovImm, 0, 0, 0, 0});
    prog.push_back({bpf::Op::Exit});

    std::string err;
    auto loaded = vm.load(prog, maps, &err);
    if (loaded) {
      ++accepted;
      bpf::ReuseportCtx ctx;
      ctx.hash = static_cast<uint32_t>(rng.next_u64());
      const auto res = vm.run(*loaded, ctx);  // must not abort
      (void)res;
    }
  }
  // Sanity: the fuzzer generates both rejects and accepts.
  EXPECT_GT(accepted, 0);
  EXPECT_LT(accepted, kPrograms);
}

// ------------------------------------------------- http parser fuzz

TEST(ParserFuzzTest, RandomBytesNeverCrashAndAlwaysProgress) {
  sim::Rng rng(0xbadcafe);
  for (int i = 0; i < 2000; ++i) {
    std::string input;
    const size_t len = rng.next_below(300);
    for (size_t k = 0; k < len; ++k) {
      // Bias toward structure-ish bytes to reach deeper states.
      switch (rng.next_below(6)) {
        case 0: input += "GET "; break;
        case 1: input += "\r\n"; break;
        case 2: input += ':'; break;
        case 3: input += " HTTP/1.1"; break;
        default:
          input += static_cast<char>(rng.next_below(256));
          break;
      }
    }
    http::RequestParser p;
    size_t off = 0;
    int guard = 0;
    while (off < input.size() && !p.failed() && !p.has_request()) {
      const size_t used = p.feed(std::string_view{input}.substr(off));
      ASSERT_LE(used, input.size() - off);
      if (used == 0) {
        // No progress is only legal in a terminal state.
        ASSERT_TRUE(p.failed() || p.has_request());
        break;
      }
      off += used;
      ASSERT_LT(++guard, 100000);
    }
  }
}

TEST(ParserFuzzTest, SplitPointsDoNotChangeTheResult) {
  // Determinism across arbitrary fragmentation: parse the same request fed
  // at random split points; the result must be identical.
  const std::string wire =
      "POST /api/v2/items?id=9 HTTP/1.1\r\nHost: shop.example\r\n"
      "Content-Length: 13\r\nX-Trace: abc\r\n\r\nhello, hermes";
  sim::Rng rng(777);
  http::RequestParser ref;
  ref.feed(wire);
  ASSERT_TRUE(ref.has_request());
  const http::Request expect = ref.take();

  for (int trial = 0; trial < 200; ++trial) {
    http::RequestParser p;
    size_t off = 0;
    while (off < wire.size()) {
      const size_t chunk = 1 + rng.next_below(17);
      const size_t n = std::min(chunk, wire.size() - off);
      off += p.feed(std::string_view{wire}.substr(off, n));
    }
    ASSERT_TRUE(p.has_request());
    const http::Request got = p.take();
    EXPECT_EQ(got.method, expect.method);
    EXPECT_EQ(got.path, expect.path);
    EXPECT_EQ(got.query, expect.query);
    EXPECT_EQ(got.body, expect.body);
    EXPECT_EQ(got.wire_size, expect.wire_size);
    EXPECT_EQ(got.headers.size(), expect.headers.size());
  }
}

}  // namespace
}  // namespace hermes
