// Token-bucket rate limiting (core/rate_limit.h): refill math, burst
// capacity, per-client isolation, bucket collision sharing, and
// bit-reproducible admission decisions.
#include "core/rate_limit.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace hermes::core {
namespace {

using hermes::SimTime;

TEST(TokenBucket, BurstThenDry) {
  TokenBucket b(/*rate_per_sec=*/10, /*burst=*/5);
  const SimTime t0 = SimTime::zero();
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(b.admit(t0)) << i;
  EXPECT_FALSE(b.admit(t0));  // bucket drained
}

TEST(TokenBucket, RefillsAtConfiguredRate) {
  TokenBucket b(/*rate_per_sec=*/10, /*burst=*/5);
  for (int i = 0; i < 5; ++i) b.admit(SimTime::zero());
  // 10 tokens/s → one token every 100ms.
  EXPECT_FALSE(b.admit(SimTime::millis(99)));
  EXPECT_TRUE(b.admit(SimTime::millis(100)));
  EXPECT_FALSE(b.admit(SimTime::millis(100)));
  // 250ms after t=100ms spent the refilled token: 2.5 more accrued → 2.
  EXPECT_TRUE(b.admit(SimTime::millis(350)));
  EXPECT_TRUE(b.admit(SimTime::millis(350)));
  EXPECT_FALSE(b.admit(SimTime::millis(350)));
}

TEST(TokenBucket, CapsAtBurst) {
  TokenBucket b(/*rate_per_sec=*/1000, /*burst=*/3);
  for (int i = 0; i < 3; ++i) b.admit(SimTime::zero());
  // An hour idle refills far more than 3 tokens; capacity clamps it.
  const SimTime later = SimTime::seconds(3600);
  EXPECT_EQ(b.tokens_milli(later), 3000u);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(b.admit(later)) << i;
  EXPECT_FALSE(b.admit(later));
}

TEST(TokenBucket, SubGrainGapsAccumulate) {
  // 1 token/s → 1 milli-token per ms. Gaps shorter than the milli-token
  // grain must not be silently dropped on every probe.
  TokenBucket b(/*rate_per_sec=*/1, /*burst=*/1);
  b.admit(SimTime::zero());
  // Probe every 100µs (0.1 milli-token each — below the integer grain).
  for (int i = 1; i <= 10000; ++i) {
    b.tokens_milli(SimTime::micros(100 * i));  // forces refill attempts
  }
  // 1 second total has passed: exactly one token accrued despite every
  // individual gap rounding to zero.
  EXPECT_TRUE(b.admit(SimTime::seconds(1)));
  EXPECT_FALSE(b.admit(SimTime::seconds(1)));
}

TEST(ClientRateLimiter, DisabledAdmitsEverything) {
  ClientRateLimiter rl(ClientRateLimiter::Config{});  // rate 0 = off
  EXPECT_FALSE(rl.enabled());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(rl.admit(static_cast<uint32_t>(i), SimTime::zero()));
  }
  EXPECT_EQ(rl.drops(), 0u);
}

TEST(ClientRateLimiter, PerClientIsolation) {
  ClientRateLimiter::Config cfg;
  cfg.rate_per_sec = 10;
  cfg.burst = 2;
  cfg.buckets = 4096;
  ClientRateLimiter rl(cfg);

  const uint32_t a = 0x0a000001, b = 0x0a000002;
  EXPECT_TRUE(rl.admit(a, SimTime::zero()));
  EXPECT_TRUE(rl.admit(a, SimTime::zero()));
  EXPECT_FALSE(rl.admit(a, SimTime::zero()));  // a drained its burst...
  EXPECT_TRUE(rl.admit(b, SimTime::zero()));   // ...b is unaffected
  EXPECT_TRUE(rl.admit(b, SimTime::zero()));
  EXPECT_EQ(rl.admits(), 4u);
  EXPECT_EQ(rl.drops(), 1u);
}

TEST(ClientRateLimiter, SingleBucketIsAGlobalLimit) {
  // buckets=1 collapses every client into one bucket — the deterministic
  // configuration the bench uses when client addresses are random.
  ClientRateLimiter::Config cfg;
  cfg.rate_per_sec = 5;
  cfg.burst = 3;
  cfg.buckets = 1;
  ClientRateLimiter rl(cfg);

  int admitted = 0;
  for (uint32_t c = 0; c < 10; ++c) {
    if (rl.admit(c * 2654435761u, SimTime::zero())) ++admitted;
  }
  EXPECT_EQ(admitted, 3);  // burst shared by all clients
  EXPECT_EQ(rl.drops(), 7u);
}

TEST(ClientRateLimiter, DeterministicAcrossRuns) {
  ClientRateLimiter::Config cfg;
  cfg.rate_per_sec = 100;
  cfg.burst = 4;
  cfg.buckets = 64;

  // Same synthetic arrival pattern twice → identical decision sequence.
  std::vector<bool> run[2];
  for (auto& decisions : run) {
    ClientRateLimiter rl(cfg);
    for (int i = 0; i < 5000; ++i) {
      const uint32_t client = static_cast<uint32_t>(i * 48271) % 97;
      const SimTime now = SimTime::micros(i * 137);
      decisions.push_back(rl.admit(client, now));
    }
  }
  EXPECT_EQ(run[0], run[1]);
  EXPECT_TRUE(std::find(run[0].begin(), run[0].end(), false) !=
              run[0].end());  // the pattern actually exercises drops
}

}  // namespace
}  // namespace hermes::core
