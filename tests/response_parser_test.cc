// Client-side response parsing, including a serializer<->parser round trip.
#include <gtest/gtest.h>

#include "http/response.h"
#include "http/response_parser.h"

namespace hermes::http {
namespace {

TEST(ResponseParserTest, ParsesSimpleResponse) {
  const auto r = parse_response(
      "HTTP/1.1 200 OK\r\nX-Worker: 3\r\nContent-Length: 2\r\n\r\nok");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->status, 200);
  EXPECT_EQ(r->reason, "OK");
  EXPECT_EQ(*r->header("x-worker"), "3");
  EXPECT_EQ(r->body, "ok");
}

TEST(ResponseParserTest, RoundTripsWithSerializer) {
  Response resp;
  resp.set_status(503)
      .add_header("Retry-After", "2")
      .set_body("overloaded");
  const auto r = parse_response(resp.serialize());
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->status, 503);
  EXPECT_EQ(r->reason, "Service Unavailable");
  EXPECT_EQ(*r->header("retry-after"), "2");
  EXPECT_EQ(r->body, "overloaded");
}

TEST(ResponseParserTest, MultiWordReasonPhrase) {
  const auto r =
      parse_response("HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->reason, "Not Found");
  EXPECT_TRUE(r->body.empty());
}

TEST(ResponseParserTest, NoContentLengthTakesRemainder) {
  const auto r = parse_response(
      "HTTP/1.1 200 OK\r\nConnection: close\r\n\r\nstreamed until close");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->body, "streamed until close");
}

TEST(ResponseParserTest, TruncatedBodyRejected) {
  EXPECT_FALSE(parse_response(
                   "HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nshort")
                   .has_value());
}

TEST(ResponseParserTest, MalformedInputsRejected) {
  EXPECT_FALSE(parse_response("").has_value());
  EXPECT_FALSE(parse_response("garbage\r\n\r\n").has_value());
  EXPECT_FALSE(parse_response("HTTP/1.1\r\n\r\n").has_value());
  EXPECT_FALSE(parse_response("HTTP/1.1 999999 X\r\n\r\n").has_value());
  EXPECT_FALSE(parse_response("HTTP/1.1 200 OK\r\nNoColon\r\n\r\n")
                   .has_value());
  EXPECT_FALSE(
      parse_response("HTTP/1.1 200 OK\r\nX: 1").has_value());  // no blank
}

TEST(ResponseParserTest, StatusWithoutReason) {
  const auto r =
      parse_response("HTTP/1.1 204\r\nContent-Length: 0\r\n\r\n");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->status, 204);
  EXPECT_TRUE(r->reason.empty());
}

}  // namespace
}  // namespace hermes::http
