// http::Response serialization, and a parser<->response round trip.
#include <gtest/gtest.h>

#include "http/parser.h"
#include "http/response.h"

namespace hermes::http {
namespace {

TEST(ResponseTest, SerializesStatusLineAndLength) {
  Response r;
  r.set_status(200).add_header("X-Worker", "3").set_body("ok");
  const std::string wire = r.serialize();
  EXPECT_NE(wire.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(wire.find("X-Worker: 3\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 2\r\n"), std::string::npos);
  EXPECT_TRUE(wire.ends_with("\r\n\r\nok"));
}

TEST(ResponseTest, ExplicitContentLengthNotDuplicated) {
  Response r;
  r.add_header("Content-Length", "5").set_body("hello");
  const std::string wire = r.serialize();
  EXPECT_EQ(wire.find("Content-Length"), wire.rfind("Content-Length"));
}

TEST(ResponseTest, CaseInsensitiveContentLengthDetection) {
  Response r;
  r.add_header("content-LENGTH", "0");
  const std::string wire = r.serialize();
  // Only the caller's spelling appears once; no auto-added header.
  EXPECT_EQ(wire.find("ontent-"), wire.rfind("ontent-"));
}

TEST(ResponseTest, ReasonPhrases) {
  EXPECT_STREQ(Response::reason_phrase(200), "OK");
  EXPECT_STREQ(Response::reason_phrase(404), "Not Found");
  EXPECT_STREQ(Response::reason_phrase(499), "Client Closed Request");
  EXPECT_STREQ(Response::reason_phrase(503), "Service Unavailable");
  EXPECT_STREQ(Response::reason_phrase(777), "Unknown");
}

TEST(ResponseTest, EmptyBodyStillFramed) {
  Response r;
  r.set_status(204);
  const std::string wire = r.serialize();
  EXPECT_NE(wire.find("HTTP/1.1 204 No Content\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 0\r\n"), std::string::npos);
  EXPECT_TRUE(wire.ends_with("\r\n\r\n"));
}

}  // namespace
}  // namespace hermes::http
