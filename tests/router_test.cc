// Route table: host/path/method matching, specificity, cost accounting.
#include <gtest/gtest.h>

#include "http/cost_model.h"
#include "http/parser.h"
#include "http/router.h"

namespace hermes::http {
namespace {

Request make_req(std::string host, std::string path,
                 Method method = Method::Get) {
  Request r;
  r.method = method;
  r.path = std::move(path);
  if (!host.empty()) r.headers.add("Host", std::move(host));
  return r;
}

TEST(HostMatchTest, ExactAndWildcardAndAny) {
  EXPECT_TRUE(RouteTable::host_matches("a.com", "a.com"));
  EXPECT_TRUE(RouteTable::host_matches("a.com", "A.COM"));
  EXPECT_FALSE(RouteTable::host_matches("a.com", "b.com"));
  EXPECT_TRUE(RouteTable::host_matches("*.a.com", "x.a.com"));
  EXPECT_TRUE(RouteTable::host_matches("*.a.com", "deep.x.a.com"));
  EXPECT_FALSE(RouteTable::host_matches("*.a.com", "a.com"));  // no subdomain
  EXPECT_TRUE(RouteTable::host_matches("", "anything"));
}

TEST(HostMatchTest, StripsPort) {
  EXPECT_TRUE(RouteTable::host_matches("a.com", "a.com:8080"));
}

TEST(PathMatchTest, PrefixAndExact) {
  EXPECT_TRUE(RouteTable::path_matches("/api/", "/api/v1/users"));
  EXPECT_FALSE(RouteTable::path_matches("/api/", "/apx"));
  EXPECT_TRUE(RouteTable::path_matches("=/health", "/health"));
  EXPECT_FALSE(RouteTable::path_matches("=/health", "/healthz"));
  EXPECT_TRUE(RouteTable::path_matches("", "/anything"));
}

TEST(RouteTableTest, MostSpecificWins) {
  RouteTable rt;
  rt.add_rule({.host = "", .path_prefix = "/", .backend_pool = 1});
  rt.add_rule({.host = "*.shop.com", .path_prefix = "/", .backend_pool = 2});
  rt.add_rule({.host = "api.shop.com", .path_prefix = "/", .backend_pool = 3});
  rt.add_rule(
      {.host = "api.shop.com", .path_prefix = "/admin/", .backend_pool = 4});

  EXPECT_EQ(rt.match(make_req("other.com", "/x")).rule->backend_pool, 1u);
  EXPECT_EQ(rt.match(make_req("www.shop.com", "/x")).rule->backend_pool, 2u);
  EXPECT_EQ(rt.match(make_req("api.shop.com", "/x")).rule->backend_pool, 3u);
  EXPECT_EQ(rt.match(make_req("api.shop.com", "/admin/p")).rule->backend_pool,
            4u);
}

TEST(RouteTableTest, MethodConstraint) {
  RouteTable rt;
  rt.add_rule({.host = "",
               .path_prefix = "/upload",
               .method = Method::Post,
               .backend_pool = 9});
  EXPECT_EQ(rt.match(make_req("", "/upload", Method::Post)).rule->backend_pool,
            9u);
  EXPECT_EQ(rt.match(make_req("", "/upload", Method::Get)).rule, nullptr);
}

TEST(RouteTableTest, NoMatchReturnsNull) {
  RouteTable rt;
  rt.add_rule({.host = "only.com", .path_prefix = "/", .backend_pool = 1});
  const auto res = rt.match(make_req("other.com", "/"));
  EXPECT_EQ(res.rule, nullptr);
  EXPECT_EQ(res.rules_examined, 1u);
}

TEST(RouteTableTest, RulesExaminedCountsFullScan) {
  RouteTable rt;
  for (int i = 0; i < 25; ++i) {
    rt.add_rule({.host = "h" + std::to_string(i) + ".com",
                 .path_prefix = "/",
                 .backend_pool = static_cast<uint32_t>(i)});
  }
  const auto res = rt.match(make_req("h24.com", "/"));
  ASSERT_NE(res.rule, nullptr);
  EXPECT_EQ(res.rules_examined, 25u);  // linear scan cost driver (Fig. A5)
}

TEST(CostModelTest, ActionsRaiseCostMonotonically) {
  CostModel cm;
  RequestShape plain{.bytes = 4096, .rules_examined = 10};
  RequestShape tls = plain;
  tls.actions.tls_terminate = true;
  tls.first_on_connection = true;
  RequestShape tls_gzip = tls;
  tls_gzip.actions.gzip_response = true;

  EXPECT_LT(cm.cost(plain), cm.cost(tls));
  EXPECT_LT(cm.cost(tls), cm.cost(tls_gzip));
}

TEST(CostModelTest, TlsHandshakeOnlyOnFirstRequest) {
  CostModel cm;
  RequestShape first{.bytes = 1024, .rules_examined = 5};
  first.actions.tls_terminate = true;
  first.first_on_connection = true;
  RequestShape later = first;
  later.first_on_connection = false;
  EXPECT_EQ(cm.cost(first) - cm.cost(later), cm.params().tls_handshake);
}

TEST(CostModelTest, CostScalesWithSize) {
  CostModel cm;
  RequestShape small{.bytes = 1024, .rules_examined = 5};
  RequestShape big = small;
  big.bytes = 64 * 1024;
  EXPECT_GT(cm.cost(big), cm.cost(small));
}

TEST(CostModelTest, BaselineMatchesPaperScale) {
  // "Our L7 LB has a 200-300us normal processing latency" (§2.3):
  // a plain routed request of a few KiB should land in that range.
  CostModel cm;
  RequestShape typical{.bytes = 8 * 1024, .rules_examined = 50};
  const SimTime c = cm.cost(typical);
  EXPECT_GE(c, SimTime::micros(100));
  EXPECT_LE(c, SimTime::micros(400));
}

}  // namespace
}  // namespace hermes::http
