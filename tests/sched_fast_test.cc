// Scheduling fast path (DESIGN.md §8): the SoA/branchless/fixed-point
// scheduler against the retained reference implementation.
//
// The contract is bit-identical bitmaps: both paths implement exact
// 128-bit fixed-point threshold math, differing only in traversal (scalar
// loops over per-worker snapshots vs one SoA gather + set-bit walking).
// The differential sweep here crosses >=10k randomized WST snapshots with
// all 6 stage orders, theta in {0, 0.1, 0.5} and group limits {1, 2, 63,
// 64}, mixing metric magnitudes up to ~2^60 so the >2^53 range — where the
// old double-precision filter misclassified — is covered continuously.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/scheduler.h"
#include "core/wst.h"
#include "simcore/rng.h"
#include "test_util.h"

namespace hermes {
namespace {

using core::FilterStage;
using core::ScheduleResult;
using core::Scheduler;
using core::SchedPath;
using core::WorkerStatusTable;

// All 6 permutations of the three cascade stages.
constexpr FilterStage kOrders[6][3] = {
    {FilterStage::Time, FilterStage::Connections, FilterStage::PendingEvents},
    {FilterStage::Time, FilterStage::PendingEvents, FilterStage::Connections},
    {FilterStage::Connections, FilterStage::Time, FilterStage::PendingEvents},
    {FilterStage::Connections, FilterStage::PendingEvents, FilterStage::Time},
    {FilterStage::PendingEvents, FilterStage::Time, FilterStage::Connections},
    {FilterStage::PendingEvents, FilterStage::Connections, FilterStage::Time},
};
constexpr double kThetas[] = {0.0, 0.1, 0.5};
constexpr uint32_t kLimits[] = {1, 2, 63, 64};

// A metric value of varied magnitude: mostly small counts, sometimes huge
// (beyond 2^53, where double rounding is lossy).
int64_t random_metric(sim::Rng& rng) {
  switch (rng.next_below(4)) {
    case 0: return 0;
    case 1: return static_cast<int64_t>(rng.next_below(1000));
    case 2: return static_cast<int64_t>(rng.next_below(1u << 30));
    default:
      return (int64_t{1} << 60) + static_cast<int64_t>(rng.next_below(8));
  }
}

TEST(SchedFastDifferentialTest, FastMatchesReferenceBitForBit) {
  sim::Rng rng(0x5eedfa57);
  const SimTime now = SimTime::seconds(100);
  uint64_t snapshots = 0;

  for (uint32_t limit : kLimits) {
    auto buf = testing::wst_buffer(limit);
    for (int iter = 0; iter < 2500; ++iter) {
      auto wst = WorkerStatusTable::init(buf.data(), limit);
      for (WorkerId w = 0; w < limit; ++w) {
        // Heartbeats spread across [now - 100ms, now]: both sides of the
        // 50 ms hang threshold, plus never-started workers.
        if (rng.bernoulli(0.1)) {
          wst.update_avail(w, SimTime::zero());
        } else {
          wst.update_avail(
              w, now - SimTime::millis(static_cast<int64_t>(rng.next_below(100))));
        }
        wst.add_connections(w, random_metric(rng));
        wst.add_pending(w, random_metric(rng));
      }
      ++snapshots;

      for (const auto& order : kOrders) {
        for (double theta : kThetas) {
          core::HermesConfig cfg;
          cfg.theta_ratio = theta;
          Scheduler sched(cfg);
          sched.set_path(SchedPath::Fast);
          const ScheduleResult fast =
              sched.schedule_with_order(wst, now, order, 3, 0, limit);
          const ScheduleResult ref = sched.schedule_reference_with_order(
              wst, now, order, 3, 0, limit);
          ASSERT_EQ(fast.bitmap, ref.bitmap)
              << "limit=" << limit << " theta=" << theta << " iter=" << iter;
          ASSERT_EQ(fast.after_time, ref.after_time);
          ASSERT_EQ(fast.after_conn, ref.after_conn);
          ASSERT_EQ(fast.after_event, ref.after_event);
          ASSERT_EQ(fast.selected, ref.selected);
        }
      }
    }
  }
  EXPECT_GE(snapshots, 10000u);
}

// Regression for the latent double-rounding bug the fixed-point rewrite
// fixes (old src/core/scheduler.cc:31): with connections {2^60, 2^60,
// 2^60 + 1} and theta = 0, double math rounds sum to 3*2^60, makes
// avg == 2^60 exactly, and rounds worker 2's value down onto the average —
// the `v == avg` degenerate check then wrongly kept the over-threshold
// worker. Exact integer math filters it: v*n = 3*2^60 + 3 > sum =
// 3*2^60 + 1, and v*n != sum.
TEST(SchedFastDifferentialTest, Above2Pow53OverThresholdWorkerIsFiltered) {
  constexpr uint32_t kWorkers = 3;
  auto buf = testing::wst_buffer(kWorkers);
  auto wst = WorkerStatusTable::init(buf.data(), kWorkers);
  const SimTime now = SimTime::seconds(1);
  constexpr int64_t kBig = int64_t{1} << 60;
  for (WorkerId w = 0; w < kWorkers; ++w) {
    wst.update_avail(w, now);
    wst.add_connections(w, w == 2 ? kBig + 1 : kBig);
  }

  core::HermesConfig cfg;
  cfg.theta_ratio = 0.0;
  Scheduler sched(cfg);
  for (SchedPath p : {SchedPath::Fast, SchedPath::Reference}) {
    sched.set_path(p);
    const ScheduleResult res = sched.schedule(wst, now);
    EXPECT_TRUE(core::bitmap_test(res.bitmap, 0)) << to_string(p);
    EXPECT_TRUE(core::bitmap_test(res.bitmap, 1)) << to_string(p);
    EXPECT_FALSE(core::bitmap_test(res.bitmap, 2))
        << to_string(p) << ": over-threshold worker passed via rounding";
    EXPECT_EQ(res.selected, 2u) << to_string(p);
  }
}

// The degenerate all-equal pass rule survives the rewrite even above 2^53:
// every candidate at exactly the same huge value passes with theta = 0.
TEST(SchedFastDifferentialTest, AllEqualHugeMetricsKeepEveryone) {
  constexpr uint32_t kWorkers = 5;
  auto buf = testing::wst_buffer(kWorkers);
  auto wst = WorkerStatusTable::init(buf.data(), kWorkers);
  const SimTime now = SimTime::seconds(1);
  for (WorkerId w = 0; w < kWorkers; ++w) {
    wst.update_avail(w, now);
    wst.add_connections(w, (int64_t{1} << 60) + 7);
    wst.add_pending(w, (int64_t{1} << 59) + 3);
  }
  core::HermesConfig cfg;
  cfg.theta_ratio = 0.0;
  Scheduler sched(cfg);
  for (SchedPath p : {SchedPath::Fast, SchedPath::Reference}) {
    sched.set_path(p);
    const ScheduleResult res = sched.schedule(wst, now);
    EXPECT_EQ(res.selected, kWorkers) << to_string(p);
  }
}

// theta quantization: the permille conversion is exact for the paper's
// sweep values and clamps the extremes that would overflow the product.
TEST(SchedFastDifferentialTest, ThetaPermilleQuantization) {
  EXPECT_EQ(core::theta_permille_of(0.0), 0);
  EXPECT_EQ(core::theta_permille_of(0.1), 100);
  EXPECT_EQ(core::theta_permille_of(0.5), 500);
  EXPECT_EQ(core::theta_permille_of(1.5), 1500);
  EXPECT_EQ(core::theta_permille_of(-1.0), 0);            // clamped low
  EXPECT_EQ(core::theta_permille_of(1e18), 1000000000000000);  // clamped high
}

}  // namespace
}  // namespace hermes
