// Cascading worker filter (Algo. 1): hang detection, count filters, theta,
// ordering ablation, group slicing.
#include <gtest/gtest.h>

#include <vector>

#include "core/hermes.h"
#include "core/scheduler.h"
#include "test_util.h"

namespace hermes::core {
namespace {

class SchedulerTest : public ::testing::Test {
 protected:
  explicit SchedulerTest(uint32_t workers = 8)
      : workers_(workers), buf_(testing::wst_buffer(workers)) {
    wst_.emplace(WorkerStatusTable::init(buf_.data(), workers_));
  }

  // Make all workers look alive as of `now`.
  void all_alive(SimTime now) {
    for (WorkerId w = 0; w < workers_; ++w) wst_->update_avail(w, now);
  }

  uint32_t workers_;
  testing::AlignedBuffer<64> buf_;
  std::optional<WorkerStatusTable> wst_;
  HermesConfig cfg_{};
};

TEST_F(SchedulerTest, AllIdleWorkersSelected) {
  Scheduler sched(cfg_);
  const SimTime now = SimTime::millis(100);
  all_alive(now);
  const auto res = sched.schedule(*wst_, now);
  EXPECT_EQ(res.selected, workers_);
  EXPECT_EQ(res.bitmap, (1ull << workers_) - 1);
  EXPECT_EQ(res.after_time, workers_);
  EXPECT_EQ(res.after_conn, workers_);
  EXPECT_EQ(res.after_event, workers_);
}

TEST_F(SchedulerTest, HungWorkerFilteredByTime) {
  Scheduler sched(cfg_);
  const SimTime now = SimTime::millis(500);
  all_alive(now);
  // Worker 3 last entered its loop long ago.
  wst_->update_avail(3, now - cfg_.hang_threshold - SimTime::millis(1));
  const auto res = sched.schedule(*wst_, now);
  EXPECT_FALSE(bitmap_test(res.bitmap, 3));
  EXPECT_EQ(res.after_time, workers_ - 1);
  EXPECT_EQ(res.selected, workers_ - 1);
}

TEST_F(SchedulerTest, WorkerExactlyAtThresholdStillAlive) {
  Scheduler sched(cfg_);
  const SimTime now = SimTime::millis(500);
  all_alive(now);
  wst_->update_avail(5, now - cfg_.hang_threshold);  // == threshold: alive
  const auto res = sched.schedule(*wst_, now);
  EXPECT_TRUE(bitmap_test(res.bitmap, 5));
}

TEST_F(SchedulerTest, HighConnectionWorkerFiltered) {
  Scheduler sched(cfg_);
  const SimTime now = SimTime::millis(10);
  all_alive(now);
  // avg = (7*10 + 1000)/8 = 133.75; threshold = 200.6 with theta 0.5.
  for (WorkerId w = 0; w < 7; ++w) wst_->add_connections(w, 10);
  wst_->add_connections(7, 1000);
  const auto res = sched.schedule(*wst_, now);
  EXPECT_FALSE(bitmap_test(res.bitmap, 7));
  EXPECT_EQ(res.selected, 7u);
}

TEST_F(SchedulerTest, BusyWorkerFilteredByPendingEvents) {
  Scheduler sched(cfg_);
  const SimTime now = SimTime::millis(10);
  all_alive(now);
  for (WorkerId w = 0; w < 7; ++w) wst_->add_pending(w, 2);
  wst_->add_pending(7, 500);
  const auto res = sched.schedule(*wst_, now);
  EXPECT_FALSE(bitmap_test(res.bitmap, 7));
}

TEST_F(SchedulerTest, ThetaWidensTheNet) {
  // Metric values 0..7: avg 3.5. theta 0 keeps < 3.5 (ids 0-3);
  // theta 1.0 keeps < 7 (ids 0-6).
  const SimTime now = SimTime::millis(10);
  all_alive(now);
  for (WorkerId w = 0; w < workers_; ++w) wst_->add_connections(w, w);

  cfg_.theta_ratio = 0.0;
  const auto narrow = Scheduler(cfg_).schedule(*wst_, now);
  EXPECT_EQ(narrow.selected, 4u);

  cfg_.theta_ratio = 1.0;
  const auto wide = Scheduler(cfg_).schedule(*wst_, now);
  EXPECT_EQ(wide.selected, 7u);
  EXPECT_GT(wide.selected, narrow.selected);
}

TEST_F(SchedulerTest, AllEqualMetricsKeepEveryoneEvenWithZeroTheta) {
  cfg_.theta_ratio = 0.0;
  Scheduler sched(cfg_);
  const SimTime now = SimTime::millis(10);
  all_alive(now);
  for (WorkerId w = 0; w < workers_; ++w) wst_->add_connections(w, 50);
  const auto res = sched.schedule(*wst_, now);
  EXPECT_EQ(res.selected, workers_);
}

TEST_F(SchedulerTest, AvgComputedOverSurvivorsNotAllWorkers) {
  // One hung worker with a huge connection count must not poison the
  // average used by the connection filter — the cascade recomputes the
  // average over survivors of the previous stage.
  Scheduler sched(cfg_);
  const SimTime now = SimTime::seconds(10);
  all_alive(now);
  wst_->update_avail(0, SimTime::zero());  // hung
  wst_->add_connections(0, 1'000'000);
  for (WorkerId w = 1; w < workers_; ++w) wst_->add_connections(w, 100);
  wst_->add_connections(1, 60);  // wrinkle: below-average survivor

  const auto res = sched.schedule(*wst_, now);
  EXPECT_FALSE(bitmap_test(res.bitmap, 0));
  // Survivors' avg ~ 94; threshold ~141: all survivors kept.
  EXPECT_EQ(res.selected, workers_ - 1);
}

TEST_F(SchedulerTest, AllHungYieldsEmptyBitmap) {
  Scheduler sched(cfg_);
  const SimTime now = SimTime::seconds(100);
  all_alive(SimTime::millis(1));  // ages out by `now`
  const auto res = sched.schedule(*wst_, now);
  EXPECT_EQ(res.bitmap, 0u);
  EXPECT_EQ(res.selected, 0u);
  // The kernel side falls back to reuseport in this case (Algo. 2).
}

TEST_F(SchedulerTest, GroupSlicingIsolatesGroups) {
  Scheduler sched(cfg_);
  const SimTime now = SimTime::millis(10);
  all_alive(now);
  // Load up group-0 workers (0..3) heavily; schedule group 1 (4..7).
  for (WorkerId w = 0; w < 4; ++w) wst_->add_connections(w, 1000);
  const auto res = sched.schedule(*wst_, now, /*base=*/4, /*limit=*/4);
  // Bitmap is group-relative: bits 0..3 = workers 4..7.
  EXPECT_EQ(res.bitmap, 0b1111u);
  EXPECT_EQ(res.selected, 4u);
}

TEST_F(SchedulerTest, CascadeOrderMatters) {
  // A worker with many connections but no pending events, and another with
  // few connections but many events: conn-then-event (paper order) vs
  // event-then-conn produce different survivor sets when theta is small.
  cfg_.theta_ratio = 0.0;
  Scheduler sched(cfg_);
  const SimTime now = SimTime::millis(10);
  all_alive(now);
  // conn:  {100, 0, 0, 0, 0, 0, 0, 0}
  // event: {0, 100, 0, 0, 0, 0, 0, 0}
  wst_->add_connections(0, 100);
  wst_->add_pending(1, 100);

  const auto paper = sched.schedule(*wst_, now);
  EXPECT_FALSE(bitmap_test(paper.bitmap, 0));
  EXPECT_FALSE(bitmap_test(paper.bitmap, 1));

  // Only-connections order keeps the busy-event worker.
  const FilterStage conn_only[] = {FilterStage::Time,
                                   FilterStage::Connections};
  const auto res = sched.schedule_with_order(*wst_, now, conn_only, 2);
  EXPECT_FALSE(bitmap_test(res.bitmap, 0));
  EXPECT_TRUE(bitmap_test(res.bitmap, 1));
}

TEST_F(SchedulerTest, IsHungPredicate) {
  Scheduler sched(cfg_);
  WorkerSnapshot snap;
  snap.loop_enter_ns = 0;
  EXPECT_FALSE(sched.is_hung(snap, cfg_.hang_threshold));
  EXPECT_TRUE(
      sched.is_hung(snap, cfg_.hang_threshold + SimTime::nanos(1)));
}

// Paper walkthrough (Fig. A4): three workers; W1 takes an expensive request
// (busy=2, conn=1) and becomes unavailable; W2 and W3 remain schedulable.
TEST(SchedulerWalkthroughTest, FigA4Steps) {
  constexpr uint32_t kWorkers = 3;
  auto buf = testing::wst_buffer(kWorkers);
  auto wst = WorkerStatusTable::init(buf.data(), kWorkers);
  HermesConfig cfg;
  cfg.hang_threshold = SimTime::millis(4);  // "unavailable if > 4t", t = 1ms
  cfg.theta_ratio = 1.0;  // small worker counts need a wide offset
  Scheduler sched(cfg);

  // t0: all available, busy = conn = 0.
  SimTime t = SimTime::millis(1);
  for (WorkerId w = 0; w < kWorkers; ++w) wst.update_avail(w, t);
  auto res = sched.schedule(wst, t);
  EXPECT_EQ(res.selected, 3u);

  // t1: W1 takes request a (2 events, conn 1).
  wst.add_pending(0, 2);
  wst.add_connections(0, 1);
  res = sched.schedule(wst, t);
  EXPECT_FALSE(bitmap_test(res.bitmap, 0));
  EXPECT_TRUE(bitmap_test(res.bitmap, 1));
  EXPECT_TRUE(bitmap_test(res.bitmap, 2));

  // t2: W2 takes b1.
  wst.add_pending(1, 2);
  wst.add_connections(1, 1);
  wst.update_avail(1, t);
  res = sched.schedule(wst, t);
  EXPECT_TRUE(bitmap_test(res.bitmap, 2));

  // t3: W1 stuck on `a` past the threshold -> FilterTime removes it even
  // after its pending count drops.
  t = SimTime::millis(6);
  wst.update_avail(1, t);
  wst.update_avail(2, t);
  wst.add_pending(1, -1);  // W2 processed one event
  res = sched.schedule(wst, t);
  EXPECT_FALSE(bitmap_test(res.bitmap, 0));  // hung

  // t5: W1 finishes everything and re-enters the loop: available again.
  t = SimTime::millis(8);
  wst.add_pending(0, -2);
  wst.update_avail(0, t);
  wst.update_avail(1, t);
  wst.update_avail(2, t);
  res = sched.schedule(wst, t);
  EXPECT_TRUE(bitmap_test(res.bitmap, 0));
}

// ---- edge cases: total failure and theta extremes ----------------------

TEST_F(SchedulerTest, AllWorkersHungProducesEmptyBitmap) {
  Scheduler sched(cfg_);
  all_alive(SimTime::millis(1));
  const SimTime now = SimTime::seconds(10);  // everyone far past threshold
  const auto res = sched.schedule(*wst_, now);
  EXPECT_EQ(res.after_time, 0u);
  EXPECT_EQ(res.after_conn, 0u);
  EXPECT_EQ(res.after_event, 0u);
  EXPECT_EQ(res.selected, 0u);
  EXPECT_EQ(res.bitmap, 0u);
}

TEST_F(SchedulerTest, ThetaZeroAllEqualLoadStillPassesEveryone) {
  // theta = 0 with identical loads: the v == avg escape hatch must keep
  // the filter from rejecting the entire (perfectly balanced) fleet.
  cfg_.theta_ratio = 0.0;
  Scheduler sched(cfg_);
  const SimTime now = SimTime::millis(100);
  all_alive(now);
  for (WorkerId w = 0; w < workers_; ++w) wst_->add_connections(w, 7);
  const auto res = sched.schedule(*wst_, now);
  EXPECT_EQ(res.selected, workers_);
}

TEST_F(SchedulerTest, ThetaZeroKeepsOnlyAtOrBelowAverage) {
  cfg_.theta_ratio = 0.0;
  Scheduler sched(cfg_);
  const SimTime now = SimTime::millis(100);
  all_alive(now);
  // conns = 0..7, avg = 3.5: only workers 0-3 fall strictly below.
  for (WorkerId w = 0; w < workers_; ++w) wst_->add_connections(w, w);
  const auto res = sched.schedule(*wst_, now);
  EXPECT_EQ(res.after_conn, 4u);
  EXPECT_EQ(res.bitmap, 0b0000'1111u);
}

TEST_F(SchedulerTest, ExtremeThetaPassesArbitrarySkew) {
  cfg_.theta_ratio = 1e6;
  Scheduler sched(cfg_);
  const SimTime now = SimTime::millis(100);
  all_alive(now);
  for (WorkerId w = 0; w < workers_; ++w) {
    wst_->add_connections(w, static_cast<int64_t>(w) * 100'000);
    wst_->add_pending(w, static_cast<int64_t>(w) * 1'000);
  }
  const auto res = sched.schedule(*wst_, now);
  EXPECT_EQ(res.selected, workers_);
}

// When every worker is hung, schedule_and_sync must still publish — an
// EMPTY bitmap — and the dispatch program must then fall back to hashing
// rather than select from a stale view.
TEST(SchedulerRuntimeEdgeTest, EmptyBitmapIsPublishedAndDispatchFallsBack) {
  HermesRuntime::Options opts;
  opts.num_workers = 4;
  HermesRuntime rt(opts);
  const SimTime t1 = SimTime::millis(10);
  for (WorkerId w = 0; w < 4; ++w) rt.hooks_for(w).on_loop_enter(t1);
  rt.schedule_and_sync(0, t1);
  EXPECT_EQ(rt.kernel_bitmap(), 0b1111u);

  // Much later, nobody has heartbeat since t1: all hung.
  const SimTime t2 = SimTime::seconds(10);
  const auto res = rt.schedule_and_sync(0, t2);
  EXPECT_EQ(res.bitmap, 0u);
  EXPECT_EQ(rt.kernel_bitmap(), 0u);  // the empty bitmap IS published

  auto att = rt.attach_port({1001, 1002, 1003, 1004});
  bpf::ReuseportCtx ctx;
  ctx.hash = 0x1234'5678;
  ctx.hash2 = 0x9abc'def0;
  const auto run = rt.vm().run(*att.program, ctx);
  EXPECT_EQ(run.ret, bpf::kRetFallback);
  EXPECT_FALSE(ctx.selection_made);
}

}  // namespace
}  // namespace hermes::core
