// POSIX shared memory region + SCM_RIGHTS fd channel.
#include <gtest/gtest.h>
#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>

#include "shm/fd_channel.h"
#include "shm/shm_region.h"

namespace hermes::shm {
namespace {

TEST(ShmRegionTest, AnonymousRegionIsZeroed) {
  auto r = ShmRegion::create_anonymous(4096);
  ASSERT_TRUE(r.valid());
  EXPECT_EQ(r.size(), 4096u);
  const auto* p = static_cast<const uint8_t*>(r.data());
  for (size_t i = 0; i < 4096; i += 512) EXPECT_EQ(p[i], 0);
}

TEST(ShmRegionTest, AnonymousRegionSharedAcrossFork) {
  auto r = ShmRegion::create_anonymous(4096);
  auto* p = static_cast<volatile uint32_t*>(r.data());
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    p[0] = 0xabcd1234;
    _exit(0);
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(p[0], 0xabcd1234u);
}

TEST(ShmRegionTest, NamedCreateOpenRoundTrip) {
  const std::string name = "/hermes_test_" + std::to_string(getpid());
  auto creator = ShmRegion::create(name, 8192);
  std::memcpy(creator.data(), "hello", 6);

  auto opener = ShmRegion::open(name, 8192);
  EXPECT_STREQ(static_cast<const char*>(opener.data()), "hello");
  // creator's destructor unlinks; opener's mapping stays valid.
}

TEST(ShmRegionTest, OpenMissingThrows) {
  EXPECT_THROW(ShmRegion::open("/hermes_definitely_missing_xyz", 64),
               std::system_error);
}

TEST(ShmRegionTest, MoveTransfersOwnership) {
  auto a = ShmRegion::create_anonymous(1024);
  void* addr = a.data();
  ShmRegion b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(b.data(), addr);
}

TEST(ShmRegionTest, CreateReplacesStaleRegion) {
  const std::string name = "/hermes_test_stale_" + std::to_string(getpid());
  auto first = ShmRegion::create(name, 1024);
  // A second create with the same name must succeed (crashed-run cleanup).
  auto second = ShmRegion::create(name, 2048);
  EXPECT_EQ(second.size(), 2048u);
}

TEST(FdChannelTest, PassesFdBetweenProcesses) {
  auto [parent_end, child_end] = FdChannel::make_pair();

  int pipefd[2];
  ASSERT_EQ(pipe(pipefd), 0);

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    parent_end.close();
    auto got = child_end.recv_fd();
    if (!got) _exit(1);
    auto [fd, tag] = *got;
    if (tag != 7) _exit(2);
    // Write through the received descriptor.
    if (write(fd, "xyz", 3) != 3) _exit(3);
    close(fd);
    _exit(0);
  }
  child_end.close();
  ASSERT_TRUE(parent_end.send_fd(pipefd[1], /*tag=*/7));
  close(pipefd[1]);

  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 0);

  char buf[4] = {};
  ASSERT_EQ(read(pipefd[0], buf, 3), 3);
  EXPECT_STREQ(buf, "xyz");
  close(pipefd[0]);
}

TEST(FdChannelTest, RecvOnClosedPeerReturnsNullopt) {
  auto [a, b] = FdChannel::make_pair();
  a.close();
  EXPECT_FALSE(b.recv_fd().has_value());
}

TEST(FdChannelTest, ByteStreamHelpers) {
  auto [a, b] = FdChannel::make_pair();
  const std::array<std::byte, 5> msg = {std::byte{1}, std::byte{2},
                                        std::byte{3}, std::byte{4},
                                        std::byte{5}};
  ASSERT_TRUE(a.send_bytes(msg));
  std::array<std::byte, 5> got{};
  ASSERT_TRUE(b.recv_exact(got));
  EXPECT_EQ(got, msg);
}

TEST(FdChannelTest, MoveSemantics) {
  auto [a, b] = FdChannel::make_pair();
  FdChannel c = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(c.valid());
  const std::array<std::byte, 1> one = {std::byte{9}};
  EXPECT_TRUE(c.send_bytes(one));
  std::array<std::byte, 1> got{};
  EXPECT_TRUE(b.recv_exact(got));
  EXPECT_EQ(got[0], std::byte{9});
}

}  // namespace
}  // namespace hermes::shm
