// Tests for the discrete-event engine, RNG, and metric recorders.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "simcore/event_queue.h"
#include "simcore/histogram.h"
#include "simcore/rng.h"

namespace hermes::sim {
namespace {

// ---------------------------------------------------------------- SimTime

TEST(SimTimeTest, UnitConversions) {
  EXPECT_EQ(SimTime::micros(3).ns(), 3000);
  EXPECT_EQ(SimTime::millis(2).ns(), 2'000'000);
  EXPECT_EQ(SimTime::seconds(1).ns(), 1'000'000'000);
  EXPECT_DOUBLE_EQ(SimTime::millis(1500).s_f(), 1.5);
  EXPECT_DOUBLE_EQ(SimTime::micros(250).ms_f(), 0.25);
}

TEST(SimTimeTest, Arithmetic) {
  const SimTime a = SimTime::millis(5);
  const SimTime b = SimTime::millis(3);
  EXPECT_EQ((a + b).ns(), SimTime::millis(8).ns());
  EXPECT_EQ((a - b).ns(), SimTime::millis(2).ns());
  EXPECT_EQ((a * 4).ns(), SimTime::millis(20).ns());
  EXPECT_EQ((a / 5).ns(), SimTime::millis(1).ns());
  EXPECT_LT(b, a);
  EXPECT_GE(a, a);
}

// ------------------------------------------------------------ EventQueue

TEST(EventQueueTest, FiresInTimestampOrder) {
  EventQueue eq;
  std::vector<int> fired;
  eq.schedule_at(SimTime::millis(3), [&] { fired.push_back(3); });
  eq.schedule_at(SimTime::millis(1), [&] { fired.push_back(1); });
  eq.schedule_at(SimTime::millis(2), [&] { fired.push_back(2); });
  eq.run_all();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eq.now(), SimTime::millis(3));
}

TEST(EventQueueTest, EqualTimestampsFireInInsertionOrder) {
  EventQueue eq;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    eq.schedule_at(SimTime::millis(1), [&fired, i] { fired.push_back(i); });
  }
  eq.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[i], i);
}

TEST(EventQueueTest, ScheduleAfterUsesCurrentTime) {
  EventQueue eq;
  SimTime fired_at;
  eq.schedule_at(SimTime::millis(10), [&] {
    eq.schedule_after(SimTime::millis(5), [&] { fired_at = eq.now(); });
  });
  eq.run_all();
  EXPECT_EQ(fired_at, SimTime::millis(15));
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue eq;
  bool fired = false;
  auto h = eq.schedule_at(SimTime::millis(1), [&] { fired = true; });
  eq.cancel(h);
  eq.run_all();
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelAfterFireIsNoop) {
  EventQueue eq;
  int count = 0;
  auto h = eq.schedule_at(SimTime::millis(1), [&] { ++count; });
  eq.run_all();
  eq.cancel(h);  // must not crash or affect anything
  eq.schedule_at(SimTime::millis(2), [&] { ++count; });
  eq.run_all();
  EXPECT_EQ(count, 2);
}

TEST(EventQueueTest, RunUntilStopsAtBoundaryInclusive) {
  EventQueue eq;
  std::vector<int> fired;
  eq.schedule_at(SimTime::millis(1), [&] { fired.push_back(1); });
  eq.schedule_at(SimTime::millis(2), [&] { fired.push_back(2); });
  eq.schedule_at(SimTime::millis(3), [&] { fired.push_back(3); });
  eq.run_until(SimTime::millis(2));
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  EXPECT_EQ(eq.now(), SimTime::millis(2));
  eq.run_all();
  EXPECT_EQ(fired.size(), 3u);
}

TEST(EventQueueTest, RunUntilAdvancesClockWhenIdle) {
  EventQueue eq;
  eq.run_until(SimTime::seconds(5));
  EXPECT_EQ(eq.now(), SimTime::seconds(5));
}

TEST(EventQueueTest, EventsCanScheduleMoreEvents) {
  EventQueue eq;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) eq.schedule_after(SimTime::micros(1), chain);
  };
  eq.schedule_at(SimTime::zero(), chain);
  eq.run_all();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(eq.now(), SimTime::micros(99));
}

TEST(EventQueueTest, SchedulingInPastAborts) {
  EventQueue eq;
  eq.schedule_at(SimTime::millis(5), [] {});
  eq.run_all();
  EXPECT_DEATH(eq.schedule_at(SimTime::millis(1), [] {}), "past");
}

// ------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42), c(43);
  bool any_diff = false;
  for (int i = 0; i < 100; ++i) {
    const uint64_t va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
    if (va != c.next_u64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextBelowIsInRangeAndRoughlyUniform) {
  Rng rng(7);
  constexpr uint64_t kN = 10;
  uint64_t counts[kN] = {};
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    const uint64_t v = rng.next_below(kN);
    ASSERT_LT(v, kN);
    ++counts[v];
  }
  for (uint64_t c : counts) {
    EXPECT_NEAR(static_cast<double>(c), kSamples / 10.0, kSamples * 0.01);
  }
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(11);
  double sum = 0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / kSamples, 5.0, 0.1);
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  RunningStat st;
  for (int i = 0; i < 200000; ++i) st.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(st.mean(), 10.0, 0.05);
  EXPECT_NEAR(st.stddev(), 2.0, 0.05);
}

TEST(RngTest, LognormalMedian) {
  Rng rng(17);
  SampleSet ss;
  for (int i = 0; i < 100000; ++i) ss.add(rng.lognormal(std::log(100.0), 0.8));
  // Median of lognormal(mu, sigma) is exp(mu).
  EXPECT_NEAR(ss.quantile(0.5), 100.0, 3.0);
}

TEST(RngTest, BoundedParetoStaysInBounds) {
  Rng rng(19);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.bounded_pareto(1.2, 10.0, 1000.0);
    EXPECT_GE(v, 10.0 * 0.999);
    EXPECT_LE(v, 1000.0 * 1.001);
  }
}

TEST(RngTest, BoundedParetoIsHeavyTailed) {
  Rng rng(23);
  SampleSet ss;
  for (int i = 0; i < 100000; ++i) ss.add(rng.bounded_pareto(1.0, 1.0, 1e6));
  // Heavy tail: p99 is orders of magnitude above the median.
  EXPECT_GT(ss.quantile(0.99) / ss.quantile(0.5), 20.0);
}

TEST(ZipfTest, SkewMatchesPmf) {
  ZipfSampler zipf(100, 1.0);
  Rng rng(29);
  std::vector<int> counts(100, 0);
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) ++counts[zipf.sample(rng)];
  // Rank 0 should dominate and match its pmf.
  EXPECT_NEAR(static_cast<double>(counts[0]) / kSamples, zipf.pmf(0), 0.01);
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[99]);
}

TEST(ZipfTest, TopHeavySkewLikePaperTenants) {
  // Paper §7: top-3 tenants take 40/28/22% in one region. A Zipf with high
  // exponent over few tenants reproduces that shape.
  ZipfSampler zipf(20, 1.6);
  double top3 = zipf.pmf(0) + zipf.pmf(1) + zipf.pmf(2);
  EXPECT_GT(top3, 0.6);
}

// -------------------------------------------------------------- Histogram

TEST(HistogramTest, ExactForSmallValues) {
  Histogram h;
  for (int i = 1; i <= 10; ++i) h.record(i);
  EXPECT_EQ(h.count(), 10u);
  EXPECT_EQ(h.min_value(), 1);
  EXPECT_EQ(h.max_value(), 10);
  EXPECT_DOUBLE_EQ(h.mean(), 5.5);
  EXPECT_EQ(h.quantile(0.5), 5);
  EXPECT_EQ(h.quantile(1.0), 10);
}

TEST(HistogramTest, QuantileRelativeErrorBounded) {
  Histogram h;
  Rng rng(31);
  std::vector<int64_t> vals;
  for (int i = 0; i < 50000; ++i) {
    const auto v = static_cast<int64_t>(rng.lognormal(std::log(1e6), 1.0));
    vals.push_back(v);
    h.record(v);
  }
  std::sort(vals.begin(), vals.end());
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    const auto exact =
        static_cast<double>(vals[static_cast<size_t>(q * (vals.size() - 1))]);
    const auto est = static_cast<double>(h.quantile(q));
    EXPECT_NEAR(est / exact, 1.0, 0.05) << "q=" << q;
  }
}

TEST(HistogramTest, RecordsSimTime) {
  Histogram h;
  h.record(SimTime::millis(5));
  EXPECT_EQ(h.quantile(1.0), SimTime::millis(5).ns());
}

TEST(HistogramTest, MergeCombinesCounts) {
  Histogram a, b;
  a.record(100);
  b.record(200);
  b.record(300);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.max_value(), 300);
  EXPECT_EQ(a.min_value(), 100);
}

TEST(HistogramTest, NegativeClampsToZero) {
  Histogram h;
  h.record(-5);
  EXPECT_EQ(h.quantile(1.0), 0);
}

TEST(HistogramTest, EmptyQuantileIsZero) {
  Histogram h;
  EXPECT_EQ(h.quantile(0.99), 0);
  EXPECT_EQ(h.count(), 0u);
}

TEST(SampleSetTest, ExactQuantiles) {
  SampleSet ss;
  for (int i = 1; i <= 100; ++i) ss.add(i);
  EXPECT_NEAR(ss.quantile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(ss.quantile(1.0), 100.0, 1e-9);
  EXPECT_NEAR(ss.quantile(0.5), 50.5, 1e-9);
  EXPECT_NEAR(ss.mean(), 50.5, 1e-9);
}

TEST(RunningStatTest, WelfordMatchesDirect) {
  RunningStat st;
  const std::vector<double> vals = {2, 4, 4, 4, 5, 5, 7, 9};
  for (double v : vals) st.add(v);
  EXPECT_DOUBLE_EQ(st.mean(), 5.0);
  EXPECT_NEAR(st.stddev(), 2.0, 1e-9);  // population sd of this classic set
}

}  // namespace
}  // namespace hermes::sim
