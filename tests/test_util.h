// Shared helpers for the test suites.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/wst.h"

namespace hermes::testing {

// A heap buffer whose data() is aligned to `Align` bytes — replaces the
// hand-rolled `(addr + 63) & ~63` pointer arithmetic that used to be
// duplicated across tests needing cache-line-aligned WST memory.
template <size_t Align = 64>
class AlignedBuffer {
 public:
  explicit AlignedBuffer(size_t bytes) : raw_(bytes + Align) {
    const auto addr = reinterpret_cast<uintptr_t>(raw_.data());
    data_ = reinterpret_cast<void*>((addr + (Align - 1)) & ~uintptr_t{Align - 1});
  }

  void* data() { return data_; }
  template <typename T>
  T* as() {
    return static_cast<T*>(data_);
  }

 private:
  std::vector<uint8_t> raw_;
  void* data_ = nullptr;
};

// Aligned backing store sized for a WorkerStatusTable of `workers`.
inline AlignedBuffer<64> wst_buffer(uint32_t workers) {
  return AlignedBuffer<64>(core::WorkerStatusTable::required_bytes(workers));
}

}  // namespace hermes::testing
