// Torture: differential fuzzing of verifier + VM + reference interpreter.
//
// Seeded random programs from testing::gen_program go through the verifier
// (via Vm::load). Accepted programs run twice against identically
// initialized state: once under bpf::Vm, once under the independent
// reference interpreter (bpf/ref_interpreter.h), with
// deterministic counter-based time/rand helpers. The contract:
//
//   * a verifier-ACCEPTED program NEVER traps in the reference interpreter
//     (no bad memory access, no bad helper call, no budget blowout) — that
//     is the verifier's entire soundness claim, checked dynamically;
//   * both implementations agree on r0, instruction count, reuseport
//     selection side effects, and final map contents — any divergence is a
//     bug in one of the three components, pinned by the failing seed.
//
// Every accepted program runs under ALL execution tiers (bpf/plan.h):
// tier 0 (reference switch interpreter), tier 1 (pre-decoded threaded
// plan with superinstruction fusion), tier 2 (threaded + verifier-guided
// check elision), tier 3 (native x86-64 JIT over the tier-2 micro-ops).
// Each tier gets an identically initialized world and must match the
// reference interpreter byte-for-byte — including insns_executed, which
// fused micro-ops must keep tier-invariant.
//
// On hosts that cannot JIT (non-x86-64, or HERMES_BPF_JIT=off), a tier-3
// request legitimately executes at tier 2 — the sweep still runs all four
// requested tiers and asserts the documented fallback, so this test is
// meaningful on every architecture.
//
// One run covers >= 10,000 generated programs.
// Tier-3 loads additionally run under the translation validator
// (HERMES_BPF_VALIDATE=1, forced for the duration of each sweep): every
// generated program and every dispatch geometry must validate with ZERO
// rejections — a reject here is a validator false positive (or a real
// codegen bug), either of which fails the run loudly with the decoded
// window in the fallback reason.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bpf/insn.h"
#include "bpf/jit/jit.h"
#include "bpf/jit/validate/validate.h"
#include "bpf/maps.h"
#include "bpf/ref_interpreter.h"
#include "bpf/vm.h"
#include "core/dispatch_prog.h"
#include "core/policy.h"
#include "simcore/rng.h"
#include "testing/fuzz_gen.h"

namespace hermes::bpf {
namespace {

constexpr uint64_t kSeedBase = 0x5eedULL << 32;
constexpr int kNumPrograms = 10'000;
constexpr int kNumTiers = 4;

// The tier a load requested at `requested` actually executes at on this
// host (bpf/plan.h: Jit falls back to Elide when unavailable).
ExecTier expected_tier(ExecTier requested) {
  if (requested == ExecTier::Jit && !jit::available()) {
    return ExecTier::Elide;
  }
  return requested;
}

constexpr testing::GenOptions kGen{};  // defaults: 2-entry array, 8 socks

// Force the translation validator on for one test's scope and assert no
// rejections happened inside it: on a JIT-capable host the sweep must be
// 100% false-positive free.
class ValidateScope {
 public:
  ValidateScope() {
    const char* v = std::getenv("HERMES_BPF_VALIDATE");
    had_env_ = v != nullptr;
    if (had_env_) saved_ = v;
    ::setenv("HERMES_BPF_VALIDATE", "1", 1);
    accepts0_ = jit::validate::accepts();
    rejects0_ = jit::validate::rejects();
  }
  ~ValidateScope() {
    EXPECT_EQ(jit::validate::rejects(), rejects0_)
        << "translation validator rejected a clean compile (false "
           "positive, or a real codegen bug)";
    if (jit::available()) {
      EXPECT_GT(jit::validate::accepts(), accepts0_)
          << "tier-3 sweep ran but the validator was never invoked";
    }
    if (had_env_) {
      ::setenv("HERMES_BPF_VALIDATE", saved_.c_str(), 1);
    } else {
      ::unsetenv("HERMES_BPF_VALIDATE");
    }
  }

 private:
  bool had_env_ = false;
  std::string saved_;
  uint64_t accepts0_ = 0;
  uint64_t rejects0_ = 0;
};

// Deterministic helper functions: both runs see the same sequence.
Vm::TimeFn counter_time(uint64_t& n) {
  return [&n] { return 1'000'000 + 7 * n++; };
}
Vm::RandFn counter_rand(uint64_t& n) {
  return [&n] { return static_cast<uint32_t>(0x9e3779b9u * ++n); };
}

struct World {
  ArrayMap array;
  ReuseportSockArray socks;

  explicit World(sim::Rng& rng)
      : array(kGen.array_entries, sizeof(uint64_t)),
        socks(kGen.sock_entries) {
    for (uint32_t k = 0; k < kGen.array_entries; ++k) {
      const uint64_t v = rng.next_u64();
      array.update(k, &v);
    }
    for (uint32_t k = 0; k < kGen.sock_entries; ++k) {
      // Mix of present cookies and empty slots (SkSelectReuseport -ENOENT).
      if (rng.bernoulli(0.75)) socks.update(k, 100 + k);
    }
  }

  // Identical twin: same bytes, separate storage.
  World(const World&) = delete;
  static void clone_into(World& dst, World& src) {
    std::memcpy(dst.array.storage_base(), src.array.storage_base(),
                src.array.storage_bytes());
    for (uint32_t k = 0; k < kGen.sock_entries; ++k) {
      const uint64_t c = src.socks.get(k);
      if (c == kNoSocket) {
        dst.socks.remove(k);
      } else {
        dst.socks.update(k, c);
      }
    }
  }
};

TEST(TortureBpfDiff, TenThousandProgramsNoTrapNoDivergence) {
  ValidateScope validate_scope;
  int accepted = 0;
  int rejected = 0;
  int accepted_with_loop = 0;
  int accepted_with_range_access = 0;

  for (int i = 0; i < kNumPrograms; ++i) {
    const uint64_t seed = kSeedBase + static_cast<uint64_t>(i);
    sim::Rng rng(seed);
    testing::GenStats stats;
    const Program prog = testing::gen_program(rng, kGen, &stats);
    const ReuseportCtx ctx0 = testing::gen_ctx(rng);

    sim::Rng gate_rng(seed ^ 0xabcdef);
    World gate_world(gate_rng);
    sim::Rng world_rng2(seed ^ 0xabcdef);
    World ref_world(world_rng2);

    // Verifier gate (Vm::load = verify + bind maps). Acceptance is
    // tier-independent: the gate Vm just answers accept/reject.
    {
      Vm gate;
      std::string err;
      if (gate.load(prog, {&gate_world.array, &gate_world.socks}, &err) ==
          nullptr) {
        ++rejected;
        continue;
      }
    }
    ++accepted;
    if (stats.has_loop) ++accepted_with_loop;
    if (stats.has_range_access) ++accepted_with_range_access;

    // Reference run first: an accepted program must never trap.
    Map* ref_maps[] = {&ref_world.array, &ref_world.socks};
    ReuseportCtx ref_ctx = ctx0;
    uint64_t ref_t = 0, ref_r = 0;
    const RefResult ref =
        ref_run(prog, ref_maps, ref_ctx, counter_time(ref_t),
                counter_rand(ref_r));
    ASSERT_FALSE(ref.trapped)
        << "verifier-accepted program trapped: " << ref.trap << " at pc "
        << ref.trap_pc << " (seed=" << seed << ")\n"
        << disassemble(prog);

    // Every execution tier runs against its own identically initialized
    // world and must match the reference byte-for-byte.
    for (int t = 0; t < kNumTiers; ++t) {
      const auto tier = static_cast<ExecTier>(t);
      sim::Rng world_rng(seed ^ 0xabcdef);
      World vm_world(world_rng);
      Vm vm;
      vm.set_tier(tier);
      std::string err;
      auto loaded =
          vm.load(prog, {&vm_world.array, &vm_world.socks}, &err);
      ASSERT_NE(loaded, nullptr)
          << "tier " << t << " rejected a program tier-independent "
          << "verification accepted (seed=" << seed << "): " << err;

      uint64_t vm_t = 0, vm_r = 0;
      vm.set_time_fn(counter_time(vm_t));
      vm.set_rand_fn(counter_rand(vm_r));
      ReuseportCtx vm_ctx = ctx0;
      const Vm::RunResult got = vm.run(*loaded, vm_ctx);

      ASSERT_EQ(got.tier, expected_tier(tier));
      ASSERT_EQ(got.ret, ref.ret)
          << "r0 divergence at tier " << t << " (seed=" << seed << ")\n"
          << disassemble(prog);
      ASSERT_EQ(got.insns_executed, ref.insns_executed)
          << "instruction-count divergence at tier " << t
          << " (seed=" << seed << ")\n"
          << disassemble(prog);
      ASSERT_EQ(vm_ctx.selection_made, ref_ctx.selection_made)
          << "selection divergence at tier " << t << " (seed=" << seed
          << ")";
      ASSERT_EQ(vm_ctx.selected_socket, ref_ctx.selected_socket)
          << "selected-socket divergence at tier " << t << " (seed=" << seed
          << ")";
      ASSERT_EQ(std::memcmp(vm_world.array.storage_base(),
                            ref_world.array.storage_base(),
                            vm_world.array.storage_bytes()),
                0)
          << "final map-content divergence at tier " << t
          << " (seed=" << seed << ")\n"
          << disassemble(prog);
      // Counter discipline: the reference tier reports no plan activity;
      // check elision is a tier >= 2 privilege.
      if (t == 0) ASSERT_EQ(got.fused_hits, 0u);
      if (t <= 1) {
        ASSERT_EQ(got.elided_checks, 0u)
            << "tier " << t << " elided a check (seed=" << seed << ")";
      }
    }
  }

  // The corpus must exercise both verifier verdicts, or the test is vacuous.
  EXPECT_GT(accepted, kNumPrograms / 20)
      << "generator produced almost no verifiable programs";
  EXPECT_GT(rejected, kNumPrograms / 20)
      << "generator stopped producing rejection-worthy programs";
  // Program classes the abstract interpreter newly admits (the old
  // verifier rejected all backward edges and all variable-offset
  // accesses) must both occur AND pass verification — otherwise the
  // corpus no longer covers the analysis engine's hardest paths.
  EXPECT_GT(accepted_with_loop, 0)
      << "no accepted program contained a bounded loop";
  EXPECT_GT(accepted_with_range_access, 0)
      << "no accepted program contained a range-proven variable-offset "
         "access";
  RecordProperty("accepted", accepted);
  RecordProperty("rejected", rejected);
  RecordProperty("accepted_with_loop", accepted_with_loop);
  RecordProperty("accepted_with_range_access", accepted_with_range_access);
}

TEST(TortureBpfDiff, GeneratorIsDeterministic) {
  for (uint64_t seed : {1ull, 42ull, 0xdeadbeefull}) {
    sim::Rng a(seed), b(seed);
    const Program pa = testing::gen_program(a, kGen);
    const Program pb = testing::gen_program(b, kGen);
    ASSERT_EQ(pa.size(), pb.size());
    for (size_t k = 0; k < pa.size(); ++k) {
      ASSERT_EQ(disassemble(pa[k]), disassemble(pb[k])) << "insn " << k;
    }
  }
}

// The production dispatch program, differentially checked: Vm and the
// reference interpreter must agree on every (bitmap, hash, hash2) we throw
// at it — this pins the program the paper actually ships, not just random
// bytecode. The sweep covers every socket-array geometry class the
// program generator supports: single- and multi-group, minimum and
// full-width (64-worker) bitmaps, and a non-power-of-two width.
TEST(TortureBpfDiff, DispatchProgramAgreesWithReferenceInterpreter) {
  ValidateScope validate_scope;
  struct Geometry {
    uint32_t groups;
    uint32_t workers_per_group;
  };
  constexpr Geometry kGeometries[] = {
      {1, 2}, {1, 8}, {2, 8}, {2, 64}, {4, 16}, {3, 5}};

  for (const Geometry& g : kGeometries) {
    const uint32_t n_socks = g.groups * g.workers_per_group;
    const uint64_t bitmap_mask = g.workers_per_group >= 64
                                     ? ~0ull
                                     : (1ull << g.workers_per_group) - 1;
    core::DispatchProgramParams params;
    params.num_groups = g.groups;
    params.workers_per_group = g.workers_per_group;
    ArrayMap sel(g.groups, sizeof(uint64_t));
    ReuseportSockArray socks(n_socks);
    for (uint32_t w = 0; w < n_socks; ++w) socks.update(w, 1000 + w);

    const Program prog = core::build_dispatch_program(params);
    // One Vm per execution tier, all bound to the same (read-only) maps:
    // the dispatch program never writes map state, so the tiers share it.
    Vm vms[kNumTiers];
    std::unique_ptr<LoadedProgram> loaded[kNumTiers];
    for (int t = 0; t < kNumTiers; ++t) {
      vms[t].set_tier(static_cast<ExecTier>(t));
      std::string err;
      loaded[t] = vms[t].load(prog, {&sel, &socks}, &err);
      ASSERT_NE(loaded[t], nullptr)
          << "geometry " << g.groups << "x" << g.workers_per_group
          << " tier " << t << ": " << err;
      ASSERT_EQ(loaded[t]->tier(), expected_tier(static_cast<ExecTier>(t)))
          << "geometry " << g.groups << "x" << g.workers_per_group
          << " tier " << t;
    }

    sim::Rng rng(7 + g.groups * 131 + g.workers_per_group);
    Map* maps[] = {&sel, &socks};
    for (int i = 0; i < 800; ++i) {
      for (uint32_t k = 0; k < g.groups; ++k) {
        sel.store_u64(k, rng.next_u64() & bitmap_mask);
      }
      const ReuseportCtx ctx0 = testing::gen_ctx(rng);
      ReuseportCtx ref_ctx = ctx0;

      const RefResult ref = ref_run(prog, maps, ref_ctx);
      ASSERT_FALSE(ref.trapped) << ref.trap << " at pc " << ref.trap_pc;
      for (int t = 0; t < kNumTiers; ++t) {
        ReuseportCtx ctx = ctx0;
        const Vm::RunResult got = vms[t].run(*loaded[t], ctx);

        const auto where = [&] {
          return ::testing::Message()
                 << "geometry " << g.groups << "x" << g.workers_per_group
                 << " iteration " << i << " tier " << t;
        };
        ASSERT_EQ(got.ret, ref.ret) << where();
        ASSERT_EQ(got.insns_executed, ref.insns_executed) << where();
        ASSERT_EQ(ctx.selection_made, ref_ctx.selection_made) << where();
        ASSERT_EQ(ctx.selected_socket, ref_ctx.selected_socket) << where();
      }
    }
  }
}

// Every scheduling policy's generated dispatch program (core/policy.h),
// differentially checked the same way — with two policy-specific twists:
//
//   * each tier gets PRIVATE maps. queue_est's program WRITES its aux map
//     (the per-dispatch estimate increment), so tiers sharing storage
//     would contaminate each other; instead every tier's final aux bytes
//     must match the reference interpreter's byte-for-byte;
//   * the policy's C++ mirror (reference_dispatch, which mutates its own
//     plain-memory aux copy) must agree with the program on both the
//     picked worker and the resulting aux contents.
//
// Aux values refresh from fill_aux() every few iterations, not every one,
// so the sweep also covers the staleness window where the bitmap moved
// but the aux state did not (weighted's membership re-check, queue_est's
// accumulated increments).
TEST(TortureBpfDiff, PolicyProgramsBitIdenticalAcrossTiers) {
  ValidateScope validate_scope;
  struct Geometry {
    uint32_t groups;
    uint32_t workers_per_group;
  };
  constexpr Geometry kGeometries[] = {
      {1, 2}, {1, 8}, {2, 8}, {2, 64}, {4, 16}, {3, 5}};
  constexpr int kIters = 450;

  core::PolicyConfig pcfg;
  pcfg.worker_weights = {4, 4, 2, 1};  // heterogeneous head, weight-1 tail

  for (size_t k = 0; k < core::kPolicyCount; ++k) {
    const auto kind = static_cast<core::PolicyKind>(k);
    const auto policy = core::make_policy(kind, pcfg);
    for (const Geometry& g : kGeometries) {
      const uint32_t n_socks = g.groups * g.workers_per_group;
      const uint64_t bitmap_mask = g.workers_per_group >= 64
                                       ? ~0ull
                                       : (1ull << g.workers_per_group) - 1;
      core::PolicyProgramParams pp;
      pp.base.num_groups = g.groups;
      pp.base.workers_per_group = g.workers_per_group;
      pp.base.min_workers = 1;
      const Program prog = policy->build_program(pp);
      const uint32_t aux_bytes = policy->aux_value_bytes();

      // One private world per tier + one for the reference interpreter.
      struct PolicyWorld {
        std::unique_ptr<ArrayMap> sel;
        std::unique_ptr<ReuseportSockArray> socks;
        std::unique_ptr<ArrayMap> aux;
        std::vector<Map*> maps;
      };
      auto make_world = [&] {
        PolicyWorld w;
        w.sel = std::make_unique<ArrayMap>(g.groups, sizeof(uint64_t));
        w.socks = std::make_unique<ReuseportSockArray>(n_socks);
        for (uint32_t s = 0; s < n_socks; ++s) w.socks->update(s, 1000 + s);
        w.maps = {w.sel.get(), w.socks.get()};
        if (aux_bytes > 0) {
          w.aux = std::make_unique<ArrayMap>(g.groups, aux_bytes);
          w.maps.push_back(w.aux.get());
        }
        return w;
      };
      PolicyWorld ref_world = make_world();
      PolicyWorld tier_worlds[kNumTiers];
      Vm vms[kNumTiers];
      std::unique_ptr<LoadedProgram> loaded[kNumTiers];
      for (int t = 0; t < kNumTiers; ++t) {
        tier_worlds[t] = make_world();
        vms[t].set_tier(static_cast<ExecTier>(t));
        std::string err;
        loaded[t] = vms[t].load(prog, tier_worlds[t].maps, &err);
        ASSERT_NE(loaded[t], nullptr)
            << policy->name() << " " << g.groups << "x"
            << g.workers_per_group << " tier " << t << ": " << err;
      }

      // The C++ mirror's aux copy (plain memory, same per-group stride as
      // the map's slots).
      const size_t stride = aux_bytes;
      std::vector<uint8_t> mirror_aux(stride * g.groups, 0);
      std::vector<uint64_t> bitmaps(g.groups, 0);

      sim::Rng rng(0xbadcab1e + k * 977 + g.groups * 131 +
                   g.workers_per_group);
      int64_t conns[core::kMaxWorkersPerGroup];
      int64_t pending[core::kMaxWorkersPerGroup];
      for (int i = 0; i < kIters; ++i) {
        for (uint32_t gr = 0; gr < g.groups; ++gr) {
          bitmaps[gr] = rng.next_u64() & bitmap_mask;
          ref_world.sel->store_u64(gr, bitmaps[gr]);
          for (int t = 0; t < kNumTiers; ++t) {
            tier_worlds[t].sel->store_u64(gr, bitmaps[gr]);
          }
        }
        if (aux_bytes > 0 && i % 4 == 0) {
          for (uint32_t gr = 0; gr < g.groups; ++gr) {
            for (uint32_t w = 0; w < core::kMaxWorkersPerGroup; ++w) {
              conns[w] = static_cast<int64_t>(rng.next_u64() % 97);
              pending[w] = static_cast<int64_t>(rng.next_u64() % 23);
            }
            core::ScheduleResult sr;
            sr.bitmap = bitmaps[gr];
            core::PolicyAuxInputs in;
            in.loop_enter_ns = conns;  // unused by current policies
            in.pending_events = pending;
            in.connections = conns;
            in.limit = g.workers_per_group;
            in.base = gr * g.workers_per_group;
            in.result = &sr;
            uint64_t words[core::kMaxWorkersPerGroup] = {};
            policy->fill_aux(in, words);
            std::memcpy(mirror_aux.data() + gr * stride, words, aux_bytes);
            ref_world.aux->update(gr, words);
            for (int t = 0; t < kNumTiers; ++t) {
              tier_worlds[t].aux->update(gr, words);
            }
          }
        }

        const ReuseportCtx ctx0 = testing::gen_ctx(rng);
        ReuseportCtx ref_ctx = ctx0;
        const RefResult ref =
            ref_run(prog, ref_world.maps, ref_ctx);
        ASSERT_FALSE(ref.trapped)
            << policy->name() << ": " << ref.trap << " at pc " << ref.trap_pc;

        // The C++ mirror must agree with the reference interpreter on the
        // picked worker (and mutate its aux copy identically).
        const WorkerId want = policy->reference_dispatch(
            pp, bitmaps.data(), mirror_aux.data(), stride, ctx0.hash,
            ctx0.hash2);
        const auto where = [&] {
          return ::testing::Message()
                 << policy->name() << " " << g.groups << "x"
                 << g.workers_per_group << " iteration " << i;
        };
        if (want == kInvalidWorker) {
          ASSERT_TRUE(ref.ret == kRetFallback || !ref_ctx.selection_made)
              << where();
        } else {
          ASSERT_EQ(ref.ret, kRetUseSelection) << where();
          ASSERT_TRUE(ref_ctx.selection_made) << where();
          ASSERT_EQ(ref_ctx.selected_socket, 1000 + want) << where();
        }
        if (aux_bytes > 0) {
          ASSERT_EQ(std::memcmp(ref_world.aux->storage_base(),
                                mirror_aux.data(),
                                ref_world.aux->storage_bytes()),
                    0)
              << where() << " (mirror aux diverged from interpreter)";
        }

        for (int t = 0; t < kNumTiers; ++t) {
          ReuseportCtx ctx = ctx0;
          const Vm::RunResult got = vms[t].run(*loaded[t], ctx);
          ASSERT_EQ(got.ret, ref.ret) << where() << " tier " << t;
          ASSERT_EQ(got.insns_executed, ref.insns_executed)
              << where() << " tier " << t;
          ASSERT_EQ(ctx.selection_made, ref_ctx.selection_made)
              << where() << " tier " << t;
          ASSERT_EQ(ctx.selected_socket, ref_ctx.selected_socket)
              << where() << " tier " << t;
          if (aux_bytes > 0) {
            ASSERT_EQ(std::memcmp(tier_worlds[t].aux->storage_base(),
                                  ref_world.aux->storage_base(),
                                  ref_world.aux->storage_bytes()),
                      0)
                << where() << " tier " << t << " (aux bytes diverged)";
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace hermes::bpf
