// Torture: fault injection with closed-loop invariant checking.
//
// ScriptedFaultInjector wedges heartbeats, lags clocks, and drops or delays
// bitmap syncs; each scenario then asserts the paper's mitigation actually
// engages:
//   * a worker whose heartbeat freezes leaves the kernel bitmap within one
//     filter window, and the dispatch program never selects it afterwards;
//   * when the surviving set shrinks below min_workers_for_dispatch the
//     program falls back to plain reuseport hashing (Algo. 2 line 4);
//   * dropped and delayed (stale) syncs are repaired by the next completed
//     sync — last-write-wins converges;
//   * under faults the full LB simulation still conserves connections:
//     the WST accounting agrees with the workers' own live counts.
#include <gtest/gtest.h>

#include <bit>
#include <numeric>
#include <optional>
#include <vector>

#include "core/hermes.h"
#include "sim/lb.h"
#include "simcore/rng.h"
#include "testing/fault_injection.h"

namespace hermes {
namespace {

using core::HermesRuntime;
using testing::ScriptedFaultInjector;

class FaultRuntimeTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kWorkers = 4;

  void make_runtime() {
    HermesRuntime::Options opts;
    opts.num_workers = kWorkers;
    opts.faults = &faults_;
    rt_.emplace(opts);
  }

  // One closed-loop tick: every worker heartbeats (through the fault
  // injector), then one of them runs the scheduler and syncs.
  core::ScheduleResult tick(SimTime now, WorkerId scheduler_worker = 0) {
    for (WorkerId w = 0; w < kWorkers; ++w) {
      rt_->hooks_for(w).on_loop_enter(now);
    }
    return rt_->schedule_and_sync(scheduler_worker, now);
  }

  // Run the dispatch program over many hashes; returns per-worker hit
  // counts (kRetUseSelection only) and the number of fallbacks.
  struct DispatchStats {
    std::vector<int> hits;
    int fallbacks = 0;
  };
  void drive_dispatch(core::PortAttachment& att, int n, uint64_t seed,
                      DispatchStats* st) {
    st->hits.assign(kWorkers, 0);
    sim::Rng rng(seed);
    for (int i = 0; i < n; ++i) {
      bpf::ReuseportCtx ctx;
      ctx.hash = static_cast<uint32_t>(rng.next_u64());
      ctx.hash2 = static_cast<uint32_t>(rng.next_u64());
      const auto res = rt_->vm().run(*att.program, ctx);
      if (res.ret == bpf::kRetUseSelection) {
        ASSERT_TRUE(ctx.selection_made);
        ASSERT_GE(ctx.selected_socket, 1000u);
        ++st->hits[ctx.selected_socket - 1000];
      } else {
        ASSERT_EQ(res.ret, bpf::kRetFallback);
        ++st->fallbacks;
      }
    }
  }

  core::PortAttachment attach() {
    std::vector<uint64_t> cookies;
    for (WorkerId w = 0; w < kWorkers; ++w) cookies.push_back(1000 + w);
    return rt_->attach_port(cookies);
  }

  ScriptedFaultInjector faults_;
  std::optional<HermesRuntime> rt_;
};

TEST_F(FaultRuntimeTest, FrozenWorkerLeavesBitmapWithinFilterWindow) {
  make_runtime();
  auto att = attach();
  const SimTime freeze_at = SimTime::millis(100);
  faults_.freeze_avail(0, freeze_at, SimTime::seconds(10));

  const SimTime hang = rt_->config().hang_threshold;  // 50 ms
  const SimTime step = SimTime::millis(5);            // epoll_wait timeout

  // Warm up: everyone alive, everyone in the bitmap.
  SimTime now = SimTime::millis(50);
  for (; now < freeze_at; now = now + step) tick(now);
  ASSERT_TRUE(core::bitmap_test(rt_->kernel_bitmap(), 0));

  // Freeze worker 0. Its heartbeat writes are now suppressed; the bitmap
  // may keep naming it until the hang threshold elapses, but no longer.
  SimTime first_absent = SimTime::zero();
  for (; now < freeze_at + SimTime::millis(200); now = now + step) {
    tick(now, /*scheduler_worker=*/1);
    if (!core::bitmap_test(rt_->kernel_bitmap(), 0)) {
      first_absent = now;
      break;
    }
  }
  ASSERT_NE(first_absent, SimTime::zero()) << "worker 0 never left bitmap";
  // Mitigation bound: absent within hang_threshold + one loop period of the
  // last pre-freeze heartbeat.
  EXPECT_LE((first_absent - freeze_at).ns(), (hang + step * 2).ns());
  EXPECT_GT(faults_.counts().avail_frozen, 0u);

  // From now on the dispatch program must never pick worker 0.
  for (; now < freeze_at + SimTime::millis(400); now = now + step) {
    tick(now, /*scheduler_worker=*/1);
    ASSERT_FALSE(core::bitmap_test(rt_->kernel_bitmap(), 0)) << now.ns();
  }
  DispatchStats st;
  drive_dispatch(att, 512, /*seed=*/9, &st);
  EXPECT_EQ(st.hits[0], 0);
  EXPECT_GT(st.hits[1] + st.hits[2] + st.hits[3], 0);
}

TEST_F(FaultRuntimeTest, SurvivorCountBelowMinFallsBackToHashing) {
  make_runtime();
  auto att = attach();
  // Freeze all but worker 3 from the start.
  for (WorkerId w : {0u, 1u, 2u}) {
    faults_.freeze_avail(w, SimTime::zero(), SimTime::seconds(10));
  }
  SimTime now = SimTime::millis(5);
  core::ScheduleResult res;
  for (; now < SimTime::millis(200); now = now + SimTime::millis(5)) {
    res = tick(now, /*scheduler_worker=*/3);
  }
  // Only worker 3 survives the time filter: popcount 1 < min_workers 2.
  EXPECT_EQ(res.selected, 1u);
  EXPECT_EQ(std::popcount(rt_->kernel_bitmap()), 1);

  DispatchStats st;
  drive_dispatch(att, 256, /*seed=*/11, &st);
  EXPECT_EQ(st.fallbacks, 256);  // Algo. 2 line 4: n > 1 required
}

TEST_F(FaultRuntimeTest, DroppedSyncsLeaveBitmapStaleUntilNextSync) {
  make_runtime();
  const SimTime t1 = SimTime::millis(10);
  tick(t1);
  const uint64_t all = rt_->kernel_bitmap();
  ASSERT_EQ(std::popcount(all), 4);

  // Overload worker 2 so the next schedule would exclude it — but drop
  // that worker's next two map updates.
  rt_->wst().add_connections(2, 1'000);
  faults_.drop_next_syncs(/*w=*/0, 2);
  const SimTime t2 = SimTime::millis(15);
  auto res = tick(t2);
  EXPECT_FALSE(core::bitmap_test(res.bitmap, 2));   // filter did exclude it
  EXPECT_EQ(rt_->kernel_bitmap(), all);             // ...but the sync was lost
  res = tick(SimTime::millis(20));
  EXPECT_EQ(rt_->kernel_bitmap(), all);             // second drop
  EXPECT_EQ(rt_->counters().syncs_dropped, 2u);
  EXPECT_EQ(faults_.counts().syncs_dropped, 2u);

  // Drops exhausted: the next completed sync repairs the kernel view.
  res = tick(SimTime::millis(25));
  EXPECT_EQ(rt_->kernel_bitmap(), res.bitmap);
  EXPECT_FALSE(core::bitmap_test(rt_->kernel_bitmap(), 2));
}

TEST_F(FaultRuntimeTest, DelayedStaleSyncIsRepairedByNextSync) {
  make_runtime();
  const SimTime t1 = SimTime::millis(10);
  tick(t1);
  const uint64_t fresh_all = rt_->kernel_bitmap();

  // Hold the next sync into group 0 (it will be applied LATE), then make
  // worker 1 overloaded and sync again — the fresh bitmap excludes 1.
  faults_.hold_syncs(/*group=*/0, 1);
  auto held_res = tick(SimTime::millis(15));
  ASSERT_EQ(faults_.held().size(), 1u);
  EXPECT_EQ(rt_->kernel_bitmap(), fresh_all);  // held, not applied

  rt_->wst().add_connections(1, 1'000);
  auto fresh = tick(SimTime::millis(20));
  ASSERT_FALSE(core::bitmap_test(fresh.bitmap, 1));
  EXPECT_EQ(rt_->kernel_bitmap(), fresh.bitmap);

  // The delayed sync now lands: a STALE bitmap (still naming worker 1)
  // overwrites the fresh one — the worst-case last-write-wins reordering.
  ASSERT_EQ(faults_.release_held(rt_->sel_map()), 1u);
  EXPECT_EQ(rt_->kernel_bitmap(), held_res.bitmap);
  EXPECT_TRUE(core::bitmap_test(rt_->kernel_bitmap(), 1));

  // Self-healing: the next closed-loop sync restores the correct view.
  auto repaired = tick(SimTime::millis(25));
  EXPECT_EQ(rt_->kernel_bitmap(), repaired.bitmap);
  EXPECT_FALSE(core::bitmap_test(rt_->kernel_bitmap(), 1));
}

TEST_F(FaultRuntimeTest, LaggedClockBeyondThresholdExcludesWorker) {
  make_runtime();
  // Worker 2's heartbeats are written 60 ms in the past (> 50 ms hang
  // threshold): it keeps running but always looks hung.
  faults_.lag_avail(2, SimTime::millis(60));
  SimTime now = SimTime::millis(100);
  core::ScheduleResult res;
  for (; now < SimTime::millis(300); now = now + SimTime::millis(5)) {
    res = tick(now, /*scheduler_worker=*/1);
    EXPECT_FALSE(core::bitmap_test(rt_->kernel_bitmap(), 2)) << now.ns();
  }
  EXPECT_EQ(res.selected, 3u);
  EXPECT_GT(faults_.counts().avail_lagged, 0u);
}

// Full simulation under faults: connection accounting must stay conserved
// between three independent views — the netsim connection table, the
// workers' own live counters, and the WST the scheduler reads.
TEST(FaultSimTest, ConnectionConservationUnderFaults) {
  ScriptedFaultInjector faults;
  faults.freeze_avail(0, SimTime::millis(100), SimTime::millis(400));
  faults.drop_next_syncs(1, 50);

  sim::LbDevice::Config cfg;
  cfg.mode = netsim::DispatchMode::HermesMode;
  cfg.num_workers = 4;
  cfg.num_ports = 4;
  cfg.seed = 99;
  cfg.faults = &faults;
  sim::LbDevice lb(cfg);

  sim::TrafficPattern p;
  p.cps = 2'000;
  p.requests_per_conn = sim::DistSpec::constant(3);
  p.request_cost_us = sim::DistSpec::constant(150);
  p.request_gap_us = sim::DistSpec::constant(2'000);
  lb.start_pattern(p, 0, 4, SimTime::millis(800));

  for (int ms = 100; ms <= 1000; ms += 100) {
    lb.eq().run_until(SimTime::millis(ms));
    int64_t worker_sum = 0, wst_sum = 0;
    for (WorkerId w = 0; w < lb.num_workers(); ++w) {
      const int64_t live = lb.worker(w).live_connections();
      const int64_t wst = lb.hermes()->wst().connections(w);
      ASSERT_GE(live, 0) << "worker " << w << " at " << ms << "ms";
      ASSERT_EQ(live, wst)
          << "worker " << w << " at " << ms << "ms: worker-side " << live
          << " vs WST " << wst;
      worker_sum += live;
      wst_sum += wst;
    }
    ASSERT_EQ(static_cast<uint64_t>(worker_sum), lb.live_connections())
        << "at " << ms << "ms";
    ASSERT_EQ(worker_sum, wst_sum);
  }
  // The faults actually fired and syncs were genuinely suppressed.
  EXPECT_GT(faults.counts().avail_frozen, 0u);
  EXPECT_GT(faults.counts().syncs_dropped, 0u);
  EXPECT_EQ(lb.hermes()->counters().syncs_dropped,
            faults.counts().syncs_dropped);
  // And the system survived: requests kept completing.
  EXPECT_GT(lb.totals().requests_completed, 100u);
}

}  // namespace
}  // namespace hermes
