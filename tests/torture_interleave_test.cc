// Torture: seeded interleaving exploration of the lock-free closed loop.
//
// N simulated workers are decomposed into atomic steps — heartbeat write,
// pending/conn updates, cascade-filter run, bitmap publish — and executed
// under seeded schedules (random-walk and PCT-style bounded-preemption).
// A shadow model is advanced in lockstep; after EVERY step the explorer
// checks:
//   * no torn or cross-slot writes: each WST slot equals the shadow exactly;
//   * connection accounting is conserved and never negative;
//   * the kernel-visible bitmap always equals the LAST COMPLETED publish
//     (last-write-wins, nothing in between);
//   * a published bitmap never names an out-of-range worker and never names
//     a worker that was hung at its schedule()'s snapshot time.
// Everything derives from one seed: the same seed must reproduce the same
// schedule, trace hash, and failure report bit for bit.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/hermes.h"
#include "testing/interleave.h"

namespace hermes {
namespace {

using core::HermesRuntime;
using testing::ExploreOptions;
using testing::ExploreResult;
using testing::InterleavingExplorer;
using testing::SchedulePolicy;

constexpr int64_t kTickNs = 10'000'000;  // 10 ms per loop entry

// System under test plus its shadow model. Steps mutate both in the same
// atomic step; invariants compare them.
struct Harness {
  Harness(uint32_t workers, uint32_t wpg) {
    HermesRuntime::Options opts;
    opts.num_workers = workers;
    opts.config.workers_per_group = wpg;
    rt.emplace(opts);
    for (WorkerId w = 0; w < workers; ++w) hooks.push_back(rt->hooks_for(w));
    ts.assign(workers, 0);
    pending.assign(workers, 0);
    conns.assign(workers, 0);
    last_pub.assign(rt->num_groups(), 0);
    saved.assign(workers, Saved{});
  }

  struct Saved {
    uint32_t group = 0;
    uint64_t bitmap = 0;
    bool valid = false;
  };

  std::optional<HermesRuntime> rt;
  std::vector<core::EventLoopHooks> hooks;
  int64_t now_ns = 0;  // global logical clock, advanced by "enter" steps
  // Shadow of the WST.
  std::vector<int64_t> ts, pending, conns;
  // Shadow of M_sel: last bitmap whose publish step completed, per group.
  std::vector<uint64_t> last_pub;
  std::vector<Saved> saved;
  // First error detected inside a step (checked by the step-errors
  // invariant so it surfaces with the full trace context).
  std::string step_err;

  void note(std::string e) {
    if (step_err.empty()) step_err = std::move(e);
  }
};

// Append worker `w`'s per-iteration step sequence to its thread script.
void add_worker_iteration(InterleavingExplorer::ThreadScript& t, Harness& h,
                          WorkerId w, uint32_t i) {
  t.step("enter", [&h, w] {
    h.now_ns += kTickNs;
    const SimTime now = SimTime::nanos(h.now_ns);
    h.hooks[w].on_loop_enter(now);
    h.ts[w] = now.ns();
  });
  const int64_t events = 1 + static_cast<int64_t>((w + i) % 3);
  t.step("events", [&h, w, events] {
    h.hooks[w].on_events_returned(events);
    h.pending[w] += events;
  });
  t.step("conn", [&h, w, i] {
    if ((w + i) % 4 == 0 && h.conns[w] > 0) {
      h.hooks[w].on_conn_close();
      --h.conns[w];
    } else {
      h.hooks[w].on_conn_open();
      ++h.conns[w];
    }
  });
  t.step("drain", [&h, w, events] {
    for (int64_t k = 0; k < events; ++k) h.hooks[w].on_event_processed();
    h.pending[w] -= events;
  });
  t.step("sched", [&h, w] {
    // First half of schedule_and_sync: run the cascade over this worker's
    // group slice of the WST. Interleavings between this snapshot and the
    // publish below are exactly what the explorer shakes.
    const uint32_t wpg = h.rt->workers_per_group();
    const uint32_t group = w / wpg;
    const WorkerId base = group * wpg;
    const uint32_t limit = std::min(wpg, h.rt->num_workers() - base);
    const SimTime now = SimTime::nanos(h.now_ns);
    const auto res = h.rt->scheduler().schedule(h.rt->wst(), now, base, limit);

    if (res.selected != static_cast<uint32_t>(std::popcount(res.bitmap))) {
      h.note("selected != popcount(bitmap)");
    }
    if (limit < 64 && (res.bitmap >> limit) != 0) {
      std::ostringstream os;
      os << "bitmap 0x" << std::hex << res.bitmap << " has bits >= limit "
         << std::dec << limit;
      h.note(os.str());
    }
    const int64_t hang = h.rt->config().hang_threshold.ns();
    for (uint32_t b = 0; b < limit; ++b) {
      if (((res.bitmap >> b) & 1u) != 0 &&
          h.now_ns - h.ts[base + b] > hang) {
        h.note("bitmap selects hung worker " + std::to_string(base + b));
      }
    }
    h.saved[w] = {group, res.bitmap, true};
  });
  t.step("publish", [&h, w] {
    // Second half: the atomic 8-byte last-write-wins publish.
    if (!h.saved[w].valid) {
      h.note("publish before sched");
      return;
    }
    h.rt->sel_map().store_u64(h.saved[w].group, h.saved[w].bitmap);
    h.last_pub[h.saved[w].group] = h.saved[w].bitmap;
  });
}

void register_invariants(InterleavingExplorer& ex, Harness& h) {
  ex.invariant("wst-matches-shadow", [&h]() -> std::string {
    for (WorkerId w = 0; w < h.rt->num_workers(); ++w) {
      const auto s = h.rt->wst().read(w);
      if (s.loop_enter_ns != h.ts[w] || s.pending_events != h.pending[w] ||
          s.connections != h.conns[w]) {
        std::ostringstream os;
        os << "worker " << w << ": wst={ts=" << s.loop_enter_ns
           << " pend=" << s.pending_events << " conn=" << s.connections
           << "} shadow={ts=" << h.ts[w] << " pend=" << h.pending[w]
           << " conn=" << h.conns[w] << "}";
        return os.str();
      }
    }
    return "";
  });
  ex.invariant("conn-conserved", [&h]() -> std::string {
    int64_t wst_sum = 0, shadow_sum = 0;
    for (WorkerId w = 0; w < h.rt->num_workers(); ++w) {
      const int64_t c = h.rt->wst().connections(w);
      if (c < 0) return "worker " + std::to_string(w) + " conns < 0";
      wst_sum += c;
      shadow_sum += h.conns[w];
    }
    if (wst_sum != shadow_sum) {
      return "sum(wst)=" + std::to_string(wst_sum) +
             " != sum(shadow)=" + std::to_string(shadow_sum);
    }
    return "";
  });
  ex.invariant("published-is-last-publish", [&h]() -> std::string {
    for (uint32_t g = 0; g < h.rt->num_groups(); ++g) {
      const uint64_t kernel = h.rt->kernel_bitmap(g);
      if (kernel != h.last_pub[g]) {
        std::ostringstream os;
        os << "group " << g << ": kernel=0x" << std::hex << kernel
           << " last-publish=0x" << h.last_pub[g];
        return os.str();
      }
    }
    return "";
  });
  ex.invariant("step-errors", [&h] { return h.step_err; });
}

struct RunSpec {
  uint32_t workers = 5;
  uint32_t wpg = 64;
  uint32_t iters = 6;
};

ExploreResult run_one(const RunSpec& spec, ExploreOptions opts) {
  Harness h(spec.workers, spec.wpg);
  InterleavingExplorer ex(opts);
  for (WorkerId w = 0; w < spec.workers; ++w) {
    ex.thread("w" + std::to_string(w))
        .repeat(spec.iters,
                [&h, w](InterleavingExplorer::ThreadScript& t, uint32_t i) {
                  add_worker_iteration(t, h, w, i);
                });
  }
  register_invariants(ex, h);
  return ex.run();
}

void run_many_seeds(const RunSpec& spec, SchedulePolicy policy,
                    uint32_t budget, uint64_t first_seed, uint64_t n_seeds) {
  for (uint64_t s = first_seed; s < first_seed + n_seeds; ++s) {
    ExploreOptions opts;
    opts.seed = s;
    opts.policy = policy;
    opts.preemption_budget = budget;
    const ExploreResult res = run_one(spec, opts);
    ASSERT_TRUE(res.ok) << res.report();
    // Every declared step ran exactly once.
    ASSERT_EQ(res.steps_executed,
              static_cast<size_t>(spec.workers) * spec.iters * 6)
        << res.report();
  }
}

TEST(TortureInterleave, RandomWalkSingleGroup) {
  run_many_seeds({.workers = 5, .wpg = 64, .iters = 6},
                 SchedulePolicy::RandomWalk, 0, /*first_seed=*/1, 120);
}

TEST(TortureInterleave, RandomWalkTwoGroups) {
  run_many_seeds({.workers = 6, .wpg = 3, .iters = 6},
                 SchedulePolicy::RandomWalk, 0, /*first_seed=*/1000, 80);
}

TEST(TortureInterleave, RandomWalkNonDivisibleGroups) {
  // 5 workers, 3 per group: groups of 3 and 2 — the scheduler's `limit`
  // differs per group and the last slice is short.
  run_many_seeds({.workers = 5, .wpg = 3, .iters = 6},
                 SchedulePolicy::RandomWalk, 0, /*first_seed=*/2000, 80);
}

TEST(TortureInterleave, BoundedPreemptionBudgetSweep) {
  for (const uint32_t budget : {0u, 1u, 3u, 7u}) {
    run_many_seeds({.workers = 5, .wpg = 64, .iters = 6},
                   SchedulePolicy::BoundedPreemption, budget,
                   /*first_seed=*/3000 + budget * 100, 40);
  }
}

TEST(TortureInterleave, SameSeedReproducesRunExactly) {
  const RunSpec spec{.workers = 5, .wpg = 3, .iters = 5};
  for (const auto policy :
       {SchedulePolicy::RandomWalk, SchedulePolicy::BoundedPreemption}) {
    ExploreOptions opts;
    opts.seed = 0xfeedface;
    opts.policy = policy;
    const ExploreResult a = run_one(spec, opts);
    const ExploreResult b = run_one(spec, opts);
    EXPECT_EQ(a.trace_hash, b.trace_hash);
    EXPECT_EQ(a.steps_executed, b.steps_executed);
    EXPECT_EQ(a.trace, b.trace);
    EXPECT_EQ(a.report(), b.report());
  }
}

TEST(TortureInterleave, DifferentSeedsExploreDifferentSchedules) {
  const RunSpec spec{.workers = 4, .wpg = 64, .iters = 4};
  std::set<uint64_t> hashes;
  for (uint64_t s = 0; s < 8; ++s) {
    ExploreOptions opts;
    opts.seed = s;
    const ExploreResult res = run_one(spec, opts);
    ASSERT_TRUE(res.ok) << res.report();
    hashes.insert(res.trace_hash);
  }
  // Not a tautology (hash collisions aside): schedules must actually vary.
  EXPECT_GT(hashes.size(), 4u);
}

TEST(TortureInterleave, FailingSeedYieldsIdenticalReplayableReport) {
  // Force a failure with a deliberately-too-strict invariant and check the
  // failure report replays bit-for-bit from the seed alone.
  const RunSpec spec{.workers = 4, .wpg = 64, .iters = 4};
  auto run_broken = [&spec](uint64_t seed) {
    Harness h(spec.workers, spec.wpg);
    InterleavingExplorer ex({.seed = seed});
    for (WorkerId w = 0; w < spec.workers; ++w) {
      ex.thread("w" + std::to_string(w))
          .repeat(spec.iters,
                  [&h, w](InterleavingExplorer::ThreadScript& t, uint32_t i) {
                    add_worker_iteration(t, h, w, i);
                  });
    }
    register_invariants(ex, h);
    ex.invariant("bogus-pending-le-2", [&h]() -> std::string {
      for (WorkerId w = 0; w < h.rt->num_workers(); ++w) {
        if (h.pending[w] > 2) {
          return "worker " + std::to_string(w) + " pending " +
                 std::to_string(h.pending[w]);
        }
      }
      return "";
    });
    return ex.run();
  };

  const ExploreResult a = run_broken(77);
  ASSERT_FALSE(a.ok);
  EXPECT_NE(a.failure.find("bogus-pending-le-2"), std::string::npos);

  const ExploreResult b = run_broken(77);
  ASSERT_FALSE(b.ok);
  EXPECT_EQ(a.failure, b.failure);
  EXPECT_EQ(a.failure_step, b.failure_step);
  EXPECT_EQ(a.trace_hash, b.trace_hash);
  EXPECT_EQ(a.report(), b.report());
  // The report is self-contained: it names the seed and the replay recipe.
  EXPECT_NE(a.report().find("seed=77"), std::string::npos);
  EXPECT_NE(a.report().find("replay:"), std::string::npos);
}

}  // namespace
}  // namespace hermes
