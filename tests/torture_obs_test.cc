// Torture: seeded interleaving exploration of the observability layer's
// lock-free protocols, at a seed count that earns the torture label.
//
// Two protocols, the same single-writer disciplines the paper's WST uses:
//   * sharded counters / histograms — each shard has one writer; merged
//     reads may interleave anywhere and must stay monotone and bounded;
//   * the trace ring's seqlock-style reader — any snapshot taken between
//     any two writer steps must be a contiguous, in-order, untorn window
//     of the written sequence.
//
// Both schedule families run per seed (random-walk for breadth, bounded
// preemption to concentrate on low-preemption-count orderings), and every
// run's trace hash is checked against a replay of the same seed —
// determinism is itself an invariant here, since a failure report is only
// useful if the seed reproduces it.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "obs/observability.h"
#include "testing/interleave.h"

namespace hermes::obs {
namespace {

using hermes::testing::ExploreOptions;
using hermes::testing::ExploreResult;
using hermes::testing::InterleavingExplorer;
using hermes::testing::SchedulePolicy;

constexpr int kSeeds = 150;

TraceEvent event_for(uint64_t i) {
  TraceEvent ev;
  ev.t_ns = static_cast<int64_t>(i);
  ev.type = static_cast<uint16_t>(1 + i % 6);
  ev.worker = static_cast<uint16_t>(i % 5);
  ev.a = static_cast<uint32_t>(i * 2654435761u);
  ev.b = i * 0x9e3779b97f4a7c15ull;
  ev.c = ~i;
  return ev;
}

// One exploration of 4 counter writers + histogram writers + a merging
// reader. Returns the trace hash so the caller can assert determinism.
uint64_t explore_counters(uint64_t seed, SchedulePolicy policy) {
  Counter c(4);
  LogHistogram h(4, 2);
  uint64_t expected_total = 0;
  uint64_t expected_records = 0;
  uint64_t last_count = 0;
  uint64_t last_value = 0;
  std::string err;

  ExploreOptions opts;
  opts.seed = seed;
  opts.policy = policy;
  opts.preemption_budget = 3;
  InterleavingExplorer ex(opts);

  for (uint32_t t = 0; t < 4; ++t) {
    auto& script = ex.thread("w" + std::to_string(t));
    script.repeat(6, [&, t](InterleavingExplorer::ThreadScript& s,
                            uint32_t i) {
      s.step("count", [&c, t, i] { c.add(t, (t + 1) * (i + 1)); });
      s.step("record", [&h, t, i] {
        h.record(t, (static_cast<uint64_t>(t) << 20) + i);
      });
    });
    for (uint32_t i = 0; i < 6; ++i) {
      expected_total += (t + 1) * (i + 1);
      ++expected_records;
    }
  }

  ex.invariant("counter-monotone-bounded", [&] {
    const uint64_t v = c.value();
    if (v < last_value) return std::string("merged counter went backwards");
    if (v > expected_total) return std::string("merged counter too large");
    last_value = v;
    return std::string();
  });
  ex.invariant("histogram-count-monotone", [&] {
    const auto snap = h.snapshot();
    if (snap.count < last_count) {
      return std::string("histogram count went backwards");
    }
    if (snap.count > expected_records) {
      return std::string("histogram count too large");
    }
    // Bucket totals must always equal the count (no half-applied record).
    uint64_t bsum = 0;
    for (uint64_t b : snap.buckets) bsum += b;
    if (bsum != snap.count) {
      return std::string("bucket totals diverge from count");
    }
    last_count = snap.count;
    return std::string();
  });
  ex.invariant("step-errors", [&err] { return err; });

  const ExploreResult r = ex.run();
  EXPECT_TRUE(r.ok) << r.report();
  EXPECT_EQ(c.value(), expected_total) << "seed " << seed;
  EXPECT_EQ(h.snapshot().count, expected_records) << "seed " << seed;
  EXPECT_EQ(h.snapshot().sum, [&] {
    uint64_t s = 0;
    for (uint32_t t = 0; t < 4; ++t) {
      for (uint32_t i = 0; i < 6; ++i) s += (static_cast<uint64_t>(t) << 20) + i;
    }
    return s;
  }()) << "seed " << seed;
  return r.trace_hash;
}

TEST(TortureObsCounters, SeedSweepBothPolicies) {
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    for (SchedulePolicy policy :
         {SchedulePolicy::RandomWalk, SchedulePolicy::BoundedPreemption}) {
      const uint64_t h1 = explore_counters(seed, policy);
      const uint64_t h2 = explore_counters(seed, policy);
      ASSERT_EQ(h1, h2) << "non-deterministic replay at seed " << seed;
    }
  }
}

// One exploration of a writer + snapshotting reader over a small ring
// (capacity 4 — overwrite pressure on nearly every write).
uint64_t explore_ring(uint64_t seed, SchedulePolicy policy) {
  TraceRing ring(4);
  uint64_t written = 0;
  std::string err;

  ExploreOptions opts;
  opts.seed = seed;
  opts.policy = policy;
  opts.preemption_budget = 4;
  InterleavingExplorer ex(opts);

  ex.thread("writer").repeat(
      20, [&](InterleavingExplorer::ThreadScript& s, uint32_t) {
        s.step("write", [&] { ring.write(event_for(written++)); });
      });
  ex.thread("reader").repeat(
      10, [&](InterleavingExplorer::ThreadScript& s, uint32_t) {
        s.step("snapshot", [&] {
          const auto snap = ring.snapshot();
          if (snap.size() > std::min<uint64_t>(written, ring.capacity())) {
            err = "snapshot larger than written window";
            return;
          }
          const uint64_t first = written - snap.size();
          for (size_t k = 0; k < snap.size(); ++k) {
            const TraceEvent want = event_for(first + k);
            if (snap[k].t_ns != want.t_ns || snap[k].b != want.b ||
                snap[k].c != want.c || snap[k].a != want.a) {
              err = "snapshot torn or out of order at k=" + std::to_string(k);
              return;
            }
          }
        });
      });
  ex.invariant("reader-consistency", [&err] { return err; });

  const ExploreResult r = ex.run();
  EXPECT_TRUE(r.ok) << r.report();
  EXPECT_EQ(written, 20u);
  return r.trace_hash;
}

TEST(TortureObsTraceRing, SeedSweepBothPolicies) {
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    for (SchedulePolicy policy :
         {SchedulePolicy::RandomWalk, SchedulePolicy::BoundedPreemption}) {
      const uint64_t h1 = explore_ring(seed, policy);
      const uint64_t h2 = explore_ring(seed, policy);
      ASSERT_EQ(h1, h2) << "non-deterministic replay at seed " << seed;
    }
  }
}

}  // namespace
}  // namespace hermes::obs
