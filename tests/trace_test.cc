// Trace capture/replay: serialization round trips, replay semantics,
// rate multipliers, and replay determinism across dispatch modes.
#include <gtest/gtest.h>

#include <sstream>

#include "sim/trace.h"

namespace hermes::sim {
namespace {

Trace tiny_trace() {
  Trace t;
  t.add({1000, 3, 2, 150.5, 1024, 5000});
  t.add({2500, 1, 1, 80.0, 512, 0});
  t.add({9000, 3, 5, 300.0, 2048, 20000});
  return t;
}

TEST(TraceTest, SaveLoadRoundTrip) {
  const Trace original = tiny_trace();
  std::stringstream ss;
  original.save(ss);

  Trace loaded;
  ASSERT_TRUE(Trace::load(ss, &loaded));
  ASSERT_EQ(loaded.size(), original.size());
  for (size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded[i].offset_us, original[i].offset_us);
    EXPECT_EQ(loaded[i].tenant, original[i].tenant);
    EXPECT_EQ(loaded[i].requests, original[i].requests);
    EXPECT_DOUBLE_EQ(loaded[i].cost_us, original[i].cost_us);
    EXPECT_EQ(loaded[i].bytes, original[i].bytes);
    EXPECT_DOUBLE_EQ(loaded[i].gap_us, original[i].gap_us);
  }
  EXPECT_EQ(loaded.duration(), SimTime::micros(9000));
}

TEST(TraceTest, LoadRejectsMalformedInput) {
  Trace t;
  std::stringstream bad1("not numbers at all\n");
  EXPECT_FALSE(Trace::load(bad1, &t));
  std::stringstream bad2("100 1 1 50 64 0\n50 1 1 50 64 0\n");  // unordered
  EXPECT_FALSE(Trace::load(bad2, &t));
  std::stringstream bad3("100 1 0 50 64 0\n");  // zero requests
  EXPECT_FALSE(Trace::load(bad3, &t));
}

TEST(TraceTest, LoadSkipsCommentsAndBlankLines) {
  std::stringstream ss("# header\n\n100 2 1 50 64 0\n# trailing\n");
  Trace t;
  ASSERT_TRUE(Trace::load(ss, &t));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0].tenant, 2u);
}

TEST(TraceTest, RecordMatchesPatternRate) {
  Rng rng(5);
  const TrafficPattern p = case_pattern(1, 8, 1.0);
  const Trace t = Trace::record(p, SimTime::seconds(2), 8, rng);
  EXPECT_NEAR(static_cast<double>(t.size()), p.cps * 2, p.cps * 2 * 0.1);
  // Arrivals ordered, tenants in range.
  for (size_t i = 1; i < t.size(); ++i) {
    EXPECT_GE(t[i].offset_us, t[i - 1].offset_us);
    EXPECT_LT(t[i].tenant, 8u);
  }
}

TEST(TraceReplayTest, ReplaysEveryConnection) {
  LbDevice::Config cfg;
  cfg.mode = netsim::DispatchMode::HermesMode;
  cfg.num_workers = 4;
  cfg.num_ports = 4;
  LbDevice lb(cfg);
  const Trace t = tiny_trace();
  TraceReplayer::replay(t, lb);
  lb.eq().run_until(SimTime::seconds(2));
  EXPECT_EQ(lb.totals().conns_opened, 3u);
  EXPECT_EQ(lb.totals().requests_completed, 2u + 1u + 5u);
}

TEST(TraceReplayTest, RateMultiplierCompressesArrivals) {
  auto arrivals_done_by = [](double rate, SimTime deadline) {
    LbDevice::Config cfg;
    cfg.mode = netsim::DispatchMode::Reuseport;
    cfg.num_workers = 4;
    cfg.num_ports = 4;
    LbDevice lb(cfg);
    Trace t;
    for (int i = 0; i < 100; ++i) {
      t.add({i * 10'000, 0, 1, 50.0, 64, 0});  // one per 10 ms, 1 s total
    }
    TraceReplayer::replay(t, lb, rate);
    lb.eq().run_until(deadline);
    return lb.totals().conns_opened;
  };
  // At 1x only half the trace has arrived by 500 ms; at 2x all of it.
  EXPECT_NEAR(static_cast<double>(
                  arrivals_done_by(1.0, SimTime::millis(500))),
              50, 2);
  EXPECT_EQ(arrivals_done_by(2.0, SimTime::millis(500)), 100u);
  EXPECT_EQ(arrivals_done_by(3.0, SimTime::millis(334)), 100u);
}

TEST(TraceReplayTest, SameTraceAcrossModesIsApplesToApples) {
  // The point of replay: identical per-connection work across modes, so
  // differences are attributable to dispatch alone.
  Rng rng(9);
  const Trace t =
      Trace::record(case_pattern(3, 4, 1.0), SimTime::seconds(2), 4, rng);
  auto generated = [&](netsim::DispatchMode mode) {
    LbDevice::Config cfg;
    cfg.mode = mode;
    cfg.num_workers = 4;
    cfg.num_ports = 4;
    LbDevice lb(cfg);
    TraceReplayer::replay(t, lb);
    lb.eq().run_until(SimTime::seconds(30));
    return std::pair{lb.totals().conns_opened,
                     lb.totals().requests_completed};
  };
  const auto hermes = generated(netsim::DispatchMode::HermesMode);
  const auto exclusive = generated(netsim::DispatchMode::EpollExclusive);
  EXPECT_EQ(hermes.first, exclusive.first);    // same connections offered
  EXPECT_EQ(hermes.second, exclusive.second);  // same total work done
}

}  // namespace
}  // namespace hermes::sim
