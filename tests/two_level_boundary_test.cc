// Two-level group scheduling at the boundaries (paper §7, Appendix C).
//
// Worker counts straddling the 64-bit bitmap word — 63, 64, 65, 128 — plus
// group sizes that do not divide the worker count. For every dispatch the
// selected global worker id must be in range, belong to the hash2-selected
// group, appear in that group's published bitmap, and agree with the C++
// reference_dispatch oracle; groups left with fewer than
// min_workers_for_dispatch survivors must fall back to hashing.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <optional>
#include <set>
#include <vector>

#include "core/dispatch_prog.h"
#include "core/hermes.h"
#include "simcore/rng.h"

namespace hermes::core {
namespace {

struct Rig {
  std::optional<HermesRuntime> rt;
  PortAttachment att;

  Rig(uint32_t workers, uint32_t wpg) {
    HermesRuntime::Options opts;
    opts.num_workers = workers;
    opts.config.workers_per_group = wpg;
    rt.emplace(opts);

    // All workers alive; one sync per group populates every M_sel slot.
    const SimTime now = SimTime::millis(10);
    for (WorkerId w = 0; w < workers; ++w) {
      rt->hooks_for(w).on_loop_enter(now);
    }
    for (uint32_t g = 0; g < rt->num_groups(); ++g) {
      rt->schedule_and_sync(/*self=*/g * wpg, now);
    }

    std::vector<uint64_t> cookies;
    for (WorkerId w = 0; w < workers; ++w) cookies.push_back(1000 + w);
    att = rt->attach_port(cookies);
  }

  DispatchProgramParams params() const {
    DispatchProgramParams p;
    p.num_groups = rt->num_groups();
    p.workers_per_group = rt->workers_per_group();
    p.min_workers = rt->config().min_workers_for_dispatch;
    return p;
  }
};

// Drive `n` dispatches, checking every single decision; fills `hit` with
// the workers that received at least one connection.
void drive_and_check(Rig& s, int n, uint64_t seed, std::set<WorkerId>* hit) {
  const uint32_t workers = s.rt->num_workers();
  const uint32_t wpg = s.rt->workers_per_group();
  const DispatchProgramParams p = s.params();
  std::vector<uint64_t> bitmaps;
  for (uint32_t g = 0; g < s.rt->num_groups(); ++g) {
    bitmaps.push_back(s.rt->kernel_bitmap(g));
  }

  sim::Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    bpf::ReuseportCtx ctx;
    ctx.hash = static_cast<uint32_t>(rng.next_u64());
    ctx.hash2 = static_cast<uint32_t>(rng.next_u64());
    const WorkerId want =
        reference_dispatch(p, bitmaps.data(), ctx.hash, ctx.hash2);

    const auto res = s.rt->vm().run(*s.att.program, ctx);
    if (want == kInvalidWorker) {
      EXPECT_EQ(res.ret, bpf::kRetFallback) << "i=" << i;
      EXPECT_FALSE(ctx.selection_made) << "i=" << i;
      continue;
    }
    ASSERT_EQ(res.ret, bpf::kRetUseSelection) << "i=" << i;
    ASSERT_TRUE(ctx.selection_made) << "i=" << i;
    const WorkerId got = static_cast<WorkerId>(ctx.selected_socket - 1000);
    ASSERT_EQ(got, want) << "i=" << i << " hash=" << ctx.hash
                         << " hash2=" << ctx.hash2;
    // In range, in the right group, and named by that group's bitmap.
    ASSERT_LT(got, workers) << "i=" << i;
    const uint32_t group = got / wpg;
    ASSERT_LT(group, s.rt->num_groups());
    ASSERT_TRUE(bitmap_test(bitmaps[group], got % wpg)) << "i=" << i;
    hit->insert(got);
  }
}

TEST(TwoLevelBoundary, Workers63SingleGroup) {
  Rig s(63, 64);
  ASSERT_EQ(s.rt->num_groups(), 1u);
  std::set<WorkerId> hit;
  drive_and_check(s, 4'000, 1, &hit);
  // All 63 workers idle and alive: everyone is selectable, most get hits.
  EXPECT_EQ(std::popcount(s.rt->kernel_bitmap(0)), 63);
  EXPECT_GT(hit.size(), 48u);
}

TEST(TwoLevelBoundary, Workers64FillsTheBitmapWord) {
  Rig s(64, 64);
  ASSERT_EQ(s.rt->num_groups(), 1u);
  EXPECT_EQ(s.rt->kernel_bitmap(0), ~0ull);
  std::set<WorkerId> hit;
  drive_and_check(s, 4'000, 2, &hit);
  EXPECT_GT(hit.size(), 48u);
}

TEST(TwoLevelBoundary, Workers65SpillIntoSecondGroup) {
  Rig s(65, 64);
  ASSERT_EQ(s.rt->num_groups(), 2u);
  // Second group holds a single worker: below min_workers_for_dispatch, so
  // every hash2 landing there must fall back — never an out-of-range id.
  EXPECT_EQ(std::popcount(s.rt->kernel_bitmap(1)), 1);
  std::set<WorkerId> hit;
  drive_and_check(s, 4'000, 3, &hit);
  EXPECT_FALSE(hit.contains(64));  // the lone spill worker: fallback only
  EXPECT_GT(hit.size(), 40u);
}

TEST(TwoLevelBoundary, Workers128TwoFullGroups) {
  Rig s(128, 64);
  ASSERT_EQ(s.rt->num_groups(), 2u);
  EXPECT_EQ(s.rt->kernel_bitmap(0), ~0ull);
  EXPECT_EQ(s.rt->kernel_bitmap(1), ~0ull);
  std::set<WorkerId> hit;
  drive_and_check(s, 8'000, 4, &hit);
  // Two-level dispatch reaches ids beyond the 64-bit word.
  EXPECT_TRUE(std::any_of(hit.begin(), hit.end(),
                          [](WorkerId w) { return w >= 64; }));
  EXPECT_GT(hit.size(), 96u);
}

TEST(TwoLevelBoundary, NonDivisibleGroupSizeShortLastGroup) {
  // 10 workers, 3 per group: groups of 3, 3, 3, 1 — the last group is both
  // short AND below min_workers (fallback), while middle groups dispatch.
  Rig s(10, 3);
  ASSERT_EQ(s.rt->num_groups(), 4u);
  EXPECT_EQ(std::popcount(s.rt->kernel_bitmap(3)), 1);
  std::set<WorkerId> hit;
  drive_and_check(s, 4'000, 5, &hit);
  for (const WorkerId w : hit) ASSERT_LT(w, 10u);
  EXPECT_FALSE(hit.contains(9));  // lone worker in the short group
  EXPECT_GE(hit.size(), 8u);      // the nine dispatchable ids get traffic
}

TEST(TwoLevelBoundary, NonDivisibleWideGroups) {
  // 65 workers, 7 per group: 9 groups of 7 plus a short group of 2 — the
  // short group still has >= min_workers and must dispatch correctly.
  Rig s(65, 7);
  ASSERT_EQ(s.rt->num_groups(), 10u);
  EXPECT_EQ(std::popcount(s.rt->kernel_bitmap(9)), 2);
  std::set<WorkerId> hit;
  drive_and_check(s, 12'000, 6, &hit);
  for (const WorkerId w : hit) ASSERT_LT(w, 65u);
  // Workers 63 and 64 live in the short final group and are reachable.
  EXPECT_TRUE(hit.contains(63) || hit.contains(64));
}

}  // namespace
}  // namespace hermes::core
