// URL percent-decoding and query parsing.
#include <gtest/gtest.h>

#include "http/url.h"

namespace hermes::http {
namespace {

TEST(PercentDecodeTest, PassThrough) {
  EXPECT_EQ(*percent_decode("hello"), "hello");
  EXPECT_EQ(*percent_decode(""), "");
}

TEST(PercentDecodeTest, DecodesEscapes) {
  EXPECT_EQ(*percent_decode("a%20b"), "a b");
  EXPECT_EQ(*percent_decode("%2Fpath%2f"), "/path/");
  EXPECT_EQ(*percent_decode("%41%42%43"), "ABC");
  EXPECT_EQ(*percent_decode("100%25"), "100%");
}

TEST(PercentDecodeTest, PlusHandling) {
  EXPECT_EQ(*percent_decode("a+b", /*form_encoding=*/true), "a b");
  EXPECT_EQ(*percent_decode("a+b", /*form_encoding=*/false), "a+b");
}

TEST(PercentDecodeTest, MalformedEscapesRejected) {
  EXPECT_FALSE(percent_decode("%").has_value());
  EXPECT_FALSE(percent_decode("abc%2").has_value());
  EXPECT_FALSE(percent_decode("%gg").has_value());
  EXPECT_FALSE(percent_decode("%2x").has_value());
}

TEST(PercentDecodeTest, DecodesNonAscii) {
  const auto v = percent_decode("%C3%A9");  // é in UTF-8
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->size(), 2u);
  EXPECT_EQ(static_cast<unsigned char>((*v)[0]), 0xC3);
}

TEST(ParseQueryTest, SplitsPairs) {
  const auto q = parse_query("a=1&b=two&c=");
  ASSERT_EQ(q.size(), 3u);
  EXPECT_EQ(q[0], (std::pair<std::string, std::string>{"a", "1"}));
  EXPECT_EQ(q[1].second, "two");
  EXPECT_EQ(q[2].second, "");
}

TEST(ParseQueryTest, ValuelessKeysAndEmptySegments) {
  const auto q = parse_query("flag&&x=1&");
  ASSERT_EQ(q.size(), 2u);
  EXPECT_EQ(q[0].first, "flag");
  EXPECT_EQ(q[0].second, "");
  EXPECT_EQ(q[1].first, "x");
}

TEST(ParseQueryTest, DecodesKeysAndValues) {
  const auto q = parse_query("user%20name=jo+smith&q=a%26b");
  ASSERT_EQ(q.size(), 2u);
  EXPECT_EQ(q[0].first, "user name");
  EXPECT_EQ(q[0].second, "jo smith");
  EXPECT_EQ(q[1].second, "a&b");
}

TEST(ParseQueryTest, MalformedEscapeKeptRaw) {
  const auto q = parse_query("k=%zz");
  ASSERT_EQ(q.size(), 1u);
  EXPECT_EQ(q[0].second, "%zz");  // kept, not dropped
}

TEST(QueryParamTest, FirstMatchWins) {
  EXPECT_EQ(*query_param("a=1&b=2&a=3", "a"), "1");
  EXPECT_FALSE(query_param("a=1", "b").has_value());
  EXPECT_FALSE(query_param("", "a").has_value());
}

}  // namespace
}  // namespace hermes::http
