// Direct Worker unit tests (no LbDevice): batch limits, wakeup accounting,
// loop cadence, hermes hook integration.
#include <gtest/gtest.h>

#include <optional>

#include "sim/worker.h"

namespace hermes::sim {
namespace {

// Minimal harness around one worker on a reuseport netstack.
class WorkerHarness {
 public:
  explicit WorkerHarness(Worker::Config wc, uint32_t workers = 1) {
    netsim::NetStack::Config nc;
    nc.mode = netsim::DispatchMode::Reuseport;
    nc.num_workers = workers;
    ns_.emplace(nc);
    ns_->add_port(80);

    Worker::Host host;
    host.on_accepted = [this](Worker&, netsim::Connection) { ++accepted_; };
    host.on_request_done = [this](Worker&, const Request& r) {
      done_.push_back(r.id);
    };
    wc.id = 0;
    worker_.emplace(wc, eq_, *ns_, host, nullptr);
    ns_->set_socket_ready_fn([this](WorkerId, netsim::ListeningSocket& s) {
      worker_->on_socket_ready(s);
    });
    worker_->attach_sockets();
    worker_->start();
  }

  Request make_request(SimTime cost, RequestId id) {
    Request r;
    r.id = id;
    r.conn = 1;
    r.arrival = eq_.now();
    r.cost = cost;
    return r;
  }

  EventQueue eq_;
  std::optional<netsim::NetStack> ns_;
  std::optional<Worker> worker_;
  int accepted_ = 0;
  std::vector<RequestId> done_;
};

TEST(WorkerTest, IdleLoopTicksAtEpollTimeout) {
  Worker::Config wc;
  wc.epoll_timeout = SimTime::millis(5);
  WorkerHarness h(wc);
  h.eq_.run_until(SimTime::millis(51));
  // One iteration per 5 ms timeout: ~10, all of them empty wakeups.
  EXPECT_NEAR(static_cast<double>(h.worker_->loop_iterations()), 10, 1);
  EXPECT_EQ(h.worker_->wasted_wakeups(), h.worker_->loop_iterations());
}

TEST(WorkerTest, RequestsProcessedInFifoOrder) {
  WorkerHarness h(Worker::Config{});
  for (RequestId i = 1; i <= 5; ++i) {
    h.worker_->deliver_request(h.make_request(SimTime::micros(100), i));
  }
  h.eq_.run_until(SimTime::millis(10));
  EXPECT_EQ(h.done_, (std::vector<RequestId>{1, 2, 3, 4, 5}));
}

TEST(WorkerTest, BatchCappedAtMaxBatch) {
  Worker::Config wc;
  wc.max_batch = 4;
  WorkerHarness h(wc);
  for (RequestId i = 1; i <= 10; ++i) {
    h.worker_->deliver_request(h.make_request(SimTime::micros(10), i));
  }
  h.eq_.run_until(SimTime::millis(5));
  // All requests complete (across multiple iterations)...
  EXPECT_EQ(h.done_.size(), 10u);
  // ...but no epoll_wait returned more than max_batch events.
  EXPECT_LE(h.worker_->events_per_wait().max_value(), 4);
}

TEST(WorkerTest, BusyTimeAccountsForProcessing) {
  WorkerHarness h(Worker::Config{});
  h.worker_->deliver_request(h.make_request(SimTime::millis(3), 1));
  h.eq_.run_until(SimTime::millis(10));
  EXPECT_GE(h.worker_->busy_time(), SimTime::millis(3));
  EXPECT_LT(h.worker_->busy_time(), SimTime::millis(4));
}

TEST(WorkerTest, AcceptsFromOwnSocket) {
  WorkerHarness h(Worker::Config{});
  netsim::FourTuple t{1, 2, 3, 80};
  ASSERT_TRUE(h.ns_->on_connection_request(t, 80, 0, h.eq_.now()).valid());
  h.eq_.run_until(SimTime::millis(5));
  EXPECT_EQ(h.accepted_, 1);
  EXPECT_EQ(h.worker_->live_connections(), 1);
  EXPECT_EQ(h.worker_->accepts_done(), 1u);
}

TEST(WorkerTest, AdoptConnectionBypassesAcceptPath) {
  Worker::Config wc;
  wc.accepts_enabled = false;
  WorkerHarness h(wc);
  netsim::FourTuple t{1, 2, 3, 80};
  const netsim::Connection conn =
      h.ns_->on_connection_request(t, 80, 0, h.eq_.now());
  ASSERT_TRUE(conn.valid());
  // Simulate the dispatcher's accept + handoff.
  const netsim::Connection acc =
      h.ns_->accept(*h.ns_->worker_socket(80, 0), 0);
  ASSERT_EQ(acc, conn);
  h.worker_->adopt_connection(acc);
  EXPECT_EQ(h.accepted_, 1);
  EXPECT_EQ(h.worker_->live_connections(), 1);
}

TEST(WorkerTest, BlockedWorkerWakesOnDelivery) {
  WorkerHarness h(Worker::Config{});
  h.eq_.run_until(SimTime::millis(2));
  EXPECT_TRUE(h.worker_->blocked());
  h.worker_->deliver_request(h.make_request(SimTime::micros(50), 1));
  h.eq_.run_until(SimTime::millis(2) + SimTime::micros(200));
  EXPECT_EQ(h.done_.size(), 1u);
  // Woken early: the blocking time recorded is well under the 5ms timeout.
  EXPECT_LT(h.worker_->blocking_time().min_value(), SimTime::millis(3).ns());
}

}  // namespace
}  // namespace hermes::sim
