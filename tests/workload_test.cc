// Workload generator: distribution algebra, case patterns, region mixes,
// tenant model.
#include <gtest/gtest.h>

#include "simcore/histogram.h"
#include "sim/workload.h"

namespace hermes::sim {
namespace {

TEST(DistSpecTest, ConstIsConst) {
  Rng rng(1);
  const auto d = DistSpec::constant(42.5);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(d.sample(rng), 42.5);
}

TEST(DistSpecTest, UniformBounds) {
  Rng rng(2);
  const auto d = DistSpec::uniform(10, 20);
  for (int i = 0; i < 1000; ++i) {
    const double v = d.sample(rng);
    EXPECT_GE(v, 10);
    EXPECT_LE(v, 20);
  }
}

TEST(DistSpecTest, ExponentialMean) {
  Rng rng(3);
  const auto d = DistSpec::exponential(100);
  double sum = 0;
  for (int i = 0; i < 100000; ++i) sum += d.sample(rng);
  EXPECT_NEAR(sum / 100000, 100, 3);
}

TEST(DistSpecTest, LognormalMedian) {
  Rng rng(4);
  const auto d = DistSpec::lognormal(500, 0.8);
  SampleSet ss;
  for (int i = 0; i < 50000; ++i) ss.add(d.sample(rng));
  EXPECT_NEAR(ss.quantile(0.5), 500, 25);
}

TEST(DistSpecTest, ParetoBounds) {
  Rng rng(5);
  const auto d = DistSpec::pareto(1.1, 100, 10000);
  for (int i = 0; i < 1000; ++i) {
    const double v = d.sample(rng);
    EXPECT_GE(v, 99.9);
    EXPECT_LE(v, 10000.1);
  }
}

TEST(CasePatternTest, CpsOrdering) {
  // Cases 1-2 are "high CPS"; cases 3-4 "low CPS" (paper Table 3 rows).
  for (double load : {1.0, 2.0, 3.0}) {
    const auto c1 = case_pattern(1, 32, load);
    const auto c2 = case_pattern(2, 32, load);
    const auto c3 = case_pattern(3, 32, load);
    const auto c4 = case_pattern(4, 32, load);
    EXPECT_GT(c1.cps, c3.cps * 10);
    EXPECT_GT(c1.cps, c4.cps * 10);
    EXPECT_GT(c2.cps, c3.cps);
  }
}

TEST(CasePatternTest, ProcessingTimeOrdering) {
  Rng rng(6);
  auto mean_cost = [&](int c) {
    const auto p = case_pattern(c, 32, 1.0);
    double sum = 0;
    for (int i = 0; i < 20000; ++i) sum += p.request_cost_us.sample(rng);
    return sum / 20000;
  };
  // "High avg processing time" cases 2, 4 dominate 1, 3.
  EXPECT_GT(mean_cost(2), 5 * mean_cost(1));
  EXPECT_GT(mean_cost(4), 5 * mean_cost(3));
}

TEST(CasePatternTest, LoadScalesCpsLinearly) {
  const auto light = case_pattern(1, 32, 1.0);
  const auto heavy = case_pattern(1, 32, 3.0);
  EXPECT_DOUBLE_EQ(heavy.cps, 3 * light.cps);
}

TEST(CasePatternTest, Case3IsLongLived) {
  Rng rng(7);
  const auto p = case_pattern(3, 32, 1.0);
  EXPECT_GT(p.requests_per_conn.sample(rng), 10);
}

TEST(CasePatternTest, InvalidCaseAborts) {
  EXPECT_DEATH(case_pattern(0, 8, 1.0), "case_id");
  EXPECT_DEATH(case_pattern(5, 8, 1.0), "case_id");
}

TEST(RegionMixTest, SharesSumToOne) {
  for (const auto& mix : paper_region_mixes()) {
    double sum = 0;
    for (double s : mix.case_share) sum += s;
    EXPECT_NEAR(sum, 1.0, 0.01) << mix.name;
  }
}

TEST(RegionMixTest, DominantCasesMatchTable4) {
  const auto mixes = paper_region_mixes();
  // Region1/3/4 dominated by case 3; Region2 by case 4.
  EXPECT_GT(mixes[0].case_share[2], 0.5);
  EXPECT_GT(mixes[1].case_share[3], 0.5);
  EXPECT_GT(mixes[2].case_share[2], 0.5);
  EXPECT_GT(mixes[3].case_share[2], 0.5);
}

TEST(RegionTrafficTest, Region3HasHeaviestTail) {
  // Region3's WebSocket share drives its P99 processing time (Table 1).
  Rng rng(8);
  const auto regions = paper_region_traffic();
  auto p99_ms = [&](const RegionTraffic& r) {
    SampleSet ss;
    for (int i = 0; i < 40000; ++i) {
      const bool ws = rng.bernoulli(r.websocket_fraction);
      ss.add(ws ? r.websocket_ms.sample(rng) : r.processing_ms.sample(rng));
    }
    return ss.quantile(0.99);
  };
  const double r1 = p99_ms(regions[0]);
  const double r3 = p99_ms(regions[2]);
  EXPECT_GT(r3, 10 * r1);
}

TEST(TenantModelTest, AssignsAllTenantsToValidCases) {
  const auto mixes = paper_region_mixes();
  const auto tm = TenantModel::from_mix(mixes[0], 64, 1.2);
  ASSERT_EQ(tm.tenant_case.size(), 64u);
  for (int c : tm.tenant_case) {
    EXPECT_GE(c, 1);
    EXPECT_LE(c, 4);
  }
}

TEST(TenantModelTest, TopTenantsCarryMixShares) {
  // The greedy assignment puts the heaviest tenants on the biggest shares:
  // for Region2 (82% case 4), the rank-0 tenant must run case 4.
  const auto mixes = paper_region_mixes();
  const auto tm = TenantModel::from_mix(mixes[1], 32, 1.2);
  EXPECT_EQ(tm.tenant_case[0], 4);
}

TEST(TenantModelTest, AggregateSharesApproximateMix) {
  const auto mixes = paper_region_mixes();
  const auto tm = TenantModel::from_mix(mixes[0], 128, 1.0);
  ZipfSampler zipf(128, 1.0);
  double share[5] = {};
  for (uint32_t t = 0; t < 128; ++t) {
    share[tm.tenant_case[t]] += zipf.pmf(t);
  }
  for (int c = 1; c <= 4; ++c) {
    EXPECT_NEAR(share[c], mixes[0].case_share[c - 1], 0.08) << "case " << c;
  }
}

}  // namespace
}  // namespace hermes::sim
