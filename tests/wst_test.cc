// Worker Status Table: layout, hooks, lock-free concurrency (threads), and
// real multi-process sharing via fork() + shared memory.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/event_loop_hooks.h"
#include "core/wst.h"
#include "shm/shm_region.h"
#include "test_util.h"

namespace hermes::core {
namespace {

// 64-byte-aligned backing store shared with the other WST-using suites.
using testing::wst_buffer;

TEST(WstLayoutTest, SlotIsOneCacheLine) {
  EXPECT_EQ(sizeof(WorkerSlot), 64u);
  EXPECT_EQ(alignof(WorkerSlot), 64u);
}

TEST(WstLayoutTest, RequiredBytesScalesWithWorkers) {
  EXPECT_EQ(WorkerStatusTable::required_bytes(1),
            WorkerStatusTable::required_bytes(0) + 64);
  EXPECT_GE(WorkerStatusTable::required_bytes(32), 32 * 64u);
}

TEST(WstTest, InitZeroesAllSlots) {
  auto buf = wst_buffer(8);
  auto wst = WorkerStatusTable::init(buf.data(), 8);
  EXPECT_EQ(wst.num_workers(), 8u);
  for (WorkerId w = 0; w < 8; ++w) {
    const auto s = wst.read(w);
    EXPECT_EQ(s.loop_enter_ns, 0);
    EXPECT_EQ(s.pending_events, 0);
    EXPECT_EQ(s.connections, 0);
  }
}

TEST(WstTest, UpdatesAreVisiblePerWorker) {
  auto buf = wst_buffer(4);
  auto wst = WorkerStatusTable::init(buf.data(), 4);
  wst.update_avail(2, SimTime::millis(7));
  wst.add_pending(2, 5);
  wst.add_pending(2, -2);
  wst.add_connections(2, 3);
  const auto s = wst.read(2);
  EXPECT_EQ(s.loop_enter_ns, SimTime::millis(7).ns());
  EXPECT_EQ(s.pending_events, 3);
  EXPECT_EQ(s.connections, 3);
  // Other workers untouched.
  EXPECT_EQ(wst.read(1).pending_events, 0);
}

TEST(WstTest, AttachSeesInitState) {
  auto buf = wst_buffer(4);
  void* mem = buf.data();
  auto wst = WorkerStatusTable::init(mem, 4);
  wst.add_connections(1, 42);

  auto other = WorkerStatusTable::attach(mem);
  EXPECT_EQ(other.num_workers(), 4u);
  EXPECT_EQ(other.connections(1), 42);
  other.add_connections(1, 1);
  EXPECT_EQ(wst.connections(1), 43);
}

TEST(WstDeathTest, AttachToGarbageAborts) {
  alignas(64) static uint8_t garbage[256] = {};
  EXPECT_DEATH(WorkerStatusTable::attach(garbage), "magic");
}

TEST(WstDeathTest, MisalignedInitAborts) {
  auto buf = wst_buffer(2);
  auto* misaligned = static_cast<uint8_t*>(buf.data()) + 8;
  EXPECT_DEATH(WorkerStatusTable::init(misaligned, 2), "aligned");
}

TEST(HooksTest, MirrorsFig9Instrumentation) {
  auto buf = wst_buffer(2);
  auto wst = WorkerStatusTable::init(buf.data(), 2);
  EventLoopHooks hooks(wst, 1);

  hooks.on_loop_enter(SimTime::millis(1));
  hooks.on_events_returned(4);
  hooks.on_event_processed();
  hooks.on_conn_open();
  hooks.on_conn_open();
  hooks.on_conn_close();

  const auto s = wst.read(1);
  EXPECT_EQ(s.loop_enter_ns, SimTime::millis(1).ns());
  EXPECT_EQ(s.pending_events, 3);
  EXPECT_EQ(s.connections, 1);
  EXPECT_EQ(wst.loop_iterations(1), 1u);
  // Worker 0 untouched.
  EXPECT_EQ(wst.read(0).loop_enter_ns, 0);
}

TEST(HooksTest, ZeroEventsReturnedIsNoop) {
  auto buf = wst_buffer(1);
  auto wst = WorkerStatusTable::init(buf.data(), 1);
  EventLoopHooks hooks(wst, 0);
  hooks.on_events_returned(0);
  EXPECT_EQ(wst.pending_events(0), 0);
}

// Lock-free concurrency: N writer threads hammer their own slots while a
// reader scans; final sums must be exact (per-slot atomicity) and the
// reader must never observe an impossible (torn) value.
TEST(WstConcurrencyTest, ParallelWritersDisjointSlots) {
  constexpr uint32_t kWorkers = 8;
  constexpr int kIters = 20000;
  auto buf = wst_buffer(kWorkers);
  auto wst = WorkerStatusTable::init(buf.data(), kWorkers);

  std::atomic<bool> stop{false};
  std::atomic<bool> torn{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (WorkerId w = 0; w < kWorkers; ++w) {
        const auto s = wst.read(w);
        if (s.pending_events < 0 || s.connections < 0) {
          torn.store(true);
        }
      }
    }
  });

  std::vector<std::thread> writers;
  for (WorkerId w = 0; w < kWorkers; ++w) {
    writers.emplace_back([&wst, w] {
      for (int i = 0; i < kIters; ++i) {
        wst.add_pending(w, 2);
        wst.add_pending(w, -1);
        wst.add_connections(w, 1);
        wst.update_avail(w, SimTime::nanos(i));
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_FALSE(torn.load());
  for (WorkerId w = 0; w < kWorkers; ++w) {
    EXPECT_EQ(wst.pending_events(w), kIters);
    EXPECT_EQ(wst.connections(w), kIters);
    EXPECT_EQ(wst.read(w).loop_enter_ns, kIters - 1);
    EXPECT_EQ(wst.loop_iterations(w), static_cast<uint64_t>(kIters));
  }
}

// The real thing: forked children share the WST through an anonymous
// MAP_SHARED region, exactly as production workers share it through shm.
TEST(WstProcessTest, ForkedWorkersShareTable) {
  constexpr uint32_t kWorkers = 2;
  constexpr int kIters = 5000;
  auto region = shm::ShmRegion::create_anonymous(
      WorkerStatusTable::required_bytes(kWorkers));
  auto wst = WorkerStatusTable::init(region.data(), kWorkers);

  for (WorkerId w = 0; w < kWorkers; ++w) {
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: attach and update own slot.
      auto child_wst = WorkerStatusTable::attach(region.data());
      for (int i = 0; i < kIters; ++i) {
        child_wst.add_connections(w, 1);
        child_wst.add_pending(w, 1);
        child_wst.update_avail(w, SimTime::nanos(i + 1));
      }
      _exit(0);
    }
  }
  for (WorkerId w = 0; w < kWorkers; ++w) {
    int status = 0;
    ASSERT_GT(wait(&status), 0);
    ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  }
  for (WorkerId w = 0; w < kWorkers; ++w) {
    EXPECT_EQ(wst.connections(w), kIters);
    EXPECT_EQ(wst.pending_events(w), kIters);
    EXPECT_EQ(wst.read(w).loop_enter_ns, kIters);
  }
}

}  // namespace
}  // namespace hermes::core
